package coherency_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"cxlpmem/internal/coherency"
)

// --- Checker self-tests --------------------------------------------------

func TestCheckerAcceptsSequentialHistory(t *testing.T) {
	h := coherency.History{
		{Host: 0, Kind: coherency.OpWrite, Value: 1, Invoke: 0, Return: 10},
		{Host: 1, Kind: coherency.OpRead, Value: 1, Invoke: 20, Return: 30},
		{Host: 1, Kind: coherency.OpWrite, Value: 2, Invoke: 40, Return: 50},
		{Host: 0, Kind: coherency.OpRead, Value: 2, Invoke: 60, Return: 70},
	}
	if ok, err := coherency.CheckLinearizable(h, 0); !ok {
		t.Errorf("sequential history rejected: %v", err)
	}
}

func TestCheckerRejectsStaleRead(t *testing.T) {
	// The write of 1 completed at t=10; a read invoked at t=20 that
	// still observes 0 is a linearizability violation.
	h := coherency.History{
		{Host: 0, Kind: coherency.OpWrite, Value: 1, Invoke: 0, Return: 10},
		{Host: 1, Kind: coherency.OpRead, Value: 0, Invoke: 20, Return: 30},
	}
	if ok, _ := coherency.CheckLinearizable(h, 0); ok {
		t.Error("stale read accepted")
	}
}

func TestCheckerRejectsLostUpdateShape(t *testing.T) {
	// Two reads observing values in an order no serial register run
	// could produce: 2 then 1, after sequential writes 1 then 2.
	h := coherency.History{
		{Host: 0, Kind: coherency.OpWrite, Value: 1, Invoke: 0, Return: 5},
		{Host: 0, Kind: coherency.OpWrite, Value: 2, Invoke: 10, Return: 15},
		{Host: 1, Kind: coherency.OpRead, Value: 2, Invoke: 20, Return: 25},
		{Host: 1, Kind: coherency.OpRead, Value: 1, Invoke: 30, Return: 35},
	}
	if ok, _ := coherency.CheckLinearizable(h, 0); ok {
		t.Error("reordered reads accepted")
	}
}

func TestCheckerAcceptsConcurrentOverlap(t *testing.T) {
	// A read fully concurrent with a write may return either value.
	for _, v := range []uint64{0, 7} {
		h := coherency.History{
			{Host: 0, Kind: coherency.OpWrite, Value: 7, Invoke: 0, Return: 100},
			{Host: 1, Kind: coherency.OpRead, Value: v, Invoke: 10, Return: 90},
		}
		if ok, err := coherency.CheckLinearizable(h, 0); !ok {
			t.Errorf("concurrent read of %d rejected: %v", v, err)
		}
	}
}

func TestCheckerValidation(t *testing.T) {
	if ok, _ := coherency.CheckLinearizable(nil, 0); !ok {
		t.Error("empty history rejected")
	}
	bad := coherency.History{{Kind: coherency.OpRead, Invoke: 10, Return: 5}}
	if ok, err := coherency.CheckLinearizable(bad, 0); ok || err == nil {
		t.Error("inverted interval accepted")
	}
	big := make(coherency.History, coherency.MaxHistoryOps+1)
	for i := range big {
		big[i] = coherency.Op{Kind: coherency.OpWrite, Value: uint64(i), Invoke: int64(i), Return: int64(i)}
	}
	if ok, err := coherency.CheckLinearizable(big, 0); ok || err == nil {
		t.Error("oversized history accepted")
	}
}

// --- Live engine histories -----------------------------------------------

// recordedOp extends Op with the register it targeted, so the merged
// record can be split per register (linearizability composes per
// object).
type recordedOp struct {
	coherency.Op
	reg int
}

// TestCoherentLinearizable is the engine's acceptance battery: N hosts
// issue random loads and stores against two shared words while the
// directory injects random snoop delays; the recorded histories must
// be register-linearizable for every N in 2..4. Run it under -race and
// the schedule noise widens further.
func TestCoherentLinearizable(t *testing.T) {
	for _, hosts := range []int{2, 3, 4} {
		hosts := hosts
		t.Run(map[int]string{2: "2-host", 3: "3-host", 4: "4-host"}[hosts], func(t *testing.T) {
			// Two registers on DIFFERENT lines: ops on one force real
			// directory traffic for the other host's line too.
			regOffs := []int64{0, 64}
			perHost := 14
			if hosts == 2 {
				perHost = 16
			}
			// Tiny caches (2 frames) force evictions mid-history, so
			// victim write-backs and RspMiss waits are part of what the
			// checker certifies.
			s := coherentSetup(t, hosts, 2)
			s.Directory.SetSnoopDelay(func() {
				// Called from every snooping goroutine: widen the
				// windows between snoop, write-back and grant. The
				// global rand source is locked, so sharing it here is
				// race-free.
				switch rand.Int63() % 3 {
				case 0:
					time.Sleep(time.Duration(500+rand.Int63()%2000) * time.Nanosecond)
				case 1:
					runtime.Gosched()
				}
			})

			histories := make([][]recordedOp, hosts)
			start := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < hosts; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cache := s.Hosts[i].Cache
					local := rand.New(rand.NewSource(int64(i)*7919 + 17))
					for j := 0; j < perHost; j++ {
						reg := int(local.Int63()) % len(regOffs)
						off := regOffs[reg]
						if local.Int63()%2 == 0 {
							v := uint64(i+1)<<32 | uint64(j+1) // globally unique
							inv := time.Since(start).Nanoseconds()
							err := cache.Store(off, v)
							ret := time.Since(start).Nanoseconds()
							if err != nil {
								t.Error(err)
								return
							}
							histories[i] = append(histories[i], recordedOp{
								Op:  coherency.Op{Host: i, Kind: coherency.OpWrite, Value: v, Invoke: inv, Return: ret},
								reg: reg,
							})
						} else {
							inv := time.Since(start).Nanoseconds()
							v, err := cache.Load(off)
							ret := time.Since(start).Nanoseconds()
							if err != nil {
								t.Error(err)
								return
							}
							histories[i] = append(histories[i], recordedOp{
								Op:  coherency.Op{Host: i, Kind: coherency.OpRead, Value: v, Invoke: inv, Return: ret},
								reg: reg,
							})
						}
					}
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			s.Directory.SetSnoopDelay(nil)

			for reg := range regOffs {
				var merged coherency.History
				for i := range histories {
					for _, op := range histories[i] {
						if op.reg == reg {
							merged = append(merged, op.Op)
						}
					}
				}
				ok, err := coherency.CheckLinearizable(merged, 0)
				if !ok {
					t.Errorf("%d hosts, register %d: %v", hosts, reg, err)
				}
			}
			if s.Directory.Stats().Snoops.Load() == 0 {
				t.Error("history ran without a single snoop — the schedule never conflicted; widen the workload")
			}
		})
	}
}

// TestCoherentLinearizableFetchAdd checks the RMW primitive the same
// way: concurrent FetchAdds recorded as write ops of their result must
// linearize — every increment visible exactly once, in some total
// order consistent with real time.
func TestCoherentLinearizableFetchAdd(t *testing.T) {
	const hosts, perHost = 3, 10
	s := coherentSetup(t, hosts, 2)
	s.Directory.SetSnoopDelay(func() {
		if rand.Int63()%2 == 0 {
			runtime.Gosched()
		}
	})
	histories := make([][]coherency.Op, hosts)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perHost; j++ {
				inv := time.Since(start).Nanoseconds()
				v, err := s.Hosts[i].Cache.FetchAdd(0, 1)
				ret := time.Since(start).Nanoseconds()
				if err != nil {
					t.Error(err)
					return
				}
				histories[i] = append(histories[i], coherency.Op{
					Host: i, Kind: coherency.OpWrite, Value: v, Invoke: inv, Return: ret,
				})
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var merged coherency.History
	seen := map[uint64]bool{}
	for i := range histories {
		for _, op := range histories[i] {
			if seen[op.Value] {
				t.Fatalf("fetch-add result %d observed twice (lost update)", op.Value)
			}
			seen[op.Value] = true
			merged = append(merged, op)
		}
	}
	// A fetch-add is a read+write pair; with unique results it
	// linearizes iff the write history of its results does.
	if ok, err := coherency.CheckLinearizable(merged, 0); !ok {
		t.Errorf("fetch-add history: %v", err)
	}
	for v := uint64(1); v <= hosts*perHost; v++ {
		if !seen[v] {
			t.Errorf("fetch-add result %d missing", v)
		}
	}
}
