package solver

import (
	"errors"
	"math"
	"sync"
	"testing"

	"cxlpmem/internal/checkpoint"
	"cxlpmem/internal/pmem"
)

type memRegion struct {
	mu   sync.Mutex
	data []byte
}

func (r *memRegion) ReadAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("out of range")
	}
	copy(p, r.data[off:])
	return nil
}

func (r *memRegion) WriteAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("out of range")
	}
	copy(r.data[off:], p)
	return nil
}

func (r *memRegion) Size() int64      { return int64(len(r.data)) }
func (r *memRegion) Persistent() bool { return true }

func newPool(t *testing.T, layout string) (*pmem.Pool, *memRegion) {
	t.Helper()
	r := &memRegion{data: make([]byte, 16<<20)}
	p, err := pmem.Create(r, layout)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestJacobiConverges(t *testing.T) {
	j, err := NewJacobi(32)
	if err != nil {
		t.Fatal(err)
	}
	var res float64
	for i := 0; i < 500; i++ {
		res = j.Step()
	}
	if res > 1e-3 {
		t.Errorf("residual after 500 iters = %g, want < 1e-3", res)
	}
	// Interior temperatures are between the boundary values.
	mid := j.Grid[16*32+16]
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid temperature = %g", mid)
	}
	if _, err := NewJacobi(2); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestJacobiCrashRecoveryBitExact(t *testing.T) {
	// Reference: uninterrupted 100 iterations.
	ref, err := NewJacobi(24)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ref.Step()
	}

	// Crashing run: checkpoint every 20, crash at 60, recover, finish.
	pool, region := newPool(t, checkpoint.Layout)
	m, err := checkpoint.New(pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJacobi(24)
	if err != nil {
		t.Fatal(err)
	}
	last, err := j.RunWithCheckpoints(m, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	if last != 60 {
		t.Fatalf("last checkpoint = %d, want 60", last)
	}
	pool.SimulateCrash()

	pool2, err := pmem.Open(region, checkpoint.Layout)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := checkpoint.Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	j2, id, err := RestoreLatestJacobi(m2)
	if err != nil {
		t.Fatal(err)
	}
	if id != 60 || j2.Iter != 60 {
		t.Fatalf("restored iter = %d (snapshot %d), want 60", j2.Iter, id)
	}
	for j2.Iter < 100 {
		j2.Step()
	}
	for i := range ref.Grid {
		if j2.Grid[i] != ref.Grid[i] {
			t.Fatalf("bit-exactness violated at cell %d: %g vs %g", i, j2.Grid[i], ref.Grid[i])
		}
	}
}

func TestJacobiSnapshotValidation(t *testing.T) {
	pool, _ := newPool(t, checkpoint.Layout)
	m, err := checkpoint.New(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := NewJacobi(8)
	if _, err := j.RunWithCheckpoints(m, 10, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := RestoreJacobi(m, 99); err == nil {
		t.Error("missing snapshot restored")
	}
	// Corrupt-length snapshot rejected.
	if err := m.Save(50, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreJacobi(m, 50); err == nil {
		t.Error("malformed snapshot decoded")
	}
}

func TestCGSolvesLaplacian(t *testing.T) {
	a, b := LaplacianSystem(64)
	c, err := NewCG(a, b)
	if err != nil {
		t.Fatal(err)
	}
	iters, res := c.Solve(1e-10, 500)
	if res > 1e-10 {
		t.Fatalf("CG did not converge: res %g after %d iters", res, iters)
	}
	// Verify A·x ≈ b.
	y := make([]float64, 64)
	c.matvec(c.X, y)
	for i := range y {
		if math.Abs(y[i]-b[i]) > 1e-8 {
			t.Fatalf("residual check failed at %d: %g", i, y[i]-b[i])
		}
	}
	if _, err := NewCG([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCGESRExactRecovery(t *testing.T) {
	const n = 48
	a, b := LaplacianSystem(n)

	// Reference: 30 uninterrupted iterations.
	ref, err := NewCG(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ref.Step()
	}

	// Crashing run: persist the full Krylov state at iteration 18.
	pool, region := newPool(t, "nvm-esr")
	st, err := NewESRState(pool, n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCG(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 18; i++ {
		c.Step()
	}
	if err := st.Save(c); err != nil {
		t.Fatal(err)
	}
	pool.SimulateCrash()

	pool2, err := pmem.Open(region, "nvm-esr")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenESRState(pool2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := st2.Restore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Iter != 18 {
		t.Fatalf("restored iter = %d", c2.Iter)
	}
	for c2.Iter < 30 {
		c2.Step()
	}
	// Exact state reconstruction: identical iterates, not merely close.
	for i := range ref.X {
		if c2.X[i] != ref.X[i] {
			t.Fatalf("x[%d] = %g, want %g (exact)", i, c2.X[i], ref.X[i])
		}
	}
	if c2.RSold != ref.RSold {
		t.Error("rsold differs after recovery")
	}
}

func TestESRValidation(t *testing.T) {
	pool, _ := newPool(t, "nvm-esr")
	if _, err := NewESRState(pool, 0); err == nil {
		t.Error("n=0 accepted")
	}
	st, err := NewESRState(pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := LaplacianSystem(16)
	c, _ := NewCG(a, b)
	if err := st.Save(c); err == nil {
		t.Error("size mismatch accepted")
	}
	a8, b8 := LaplacianSystem(8)
	if _, err := st.Restore(a, b8); err == nil {
		t.Error("restore dimension mismatch accepted")
	}
	c8, _ := NewCG(a8, b8)
	if err := st.Save(c8); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restore(a8, b8); err != nil {
		t.Fatal(err)
	}
	// Open on a pool without state fails.
	pool2, _ := newPool(t, "empty")
	if _, err := OpenESRState(pool2); err == nil {
		t.Error("open without state accepted")
	}
}
