package solver

import (
	"encoding/binary"
	"fmt"
	"math"

	"cxlpmem/internal/pmem"
)

// Conjugate-gradient solver with NVM-ESR-style exact state
// reconstruction: the complete Krylov state (x, r, p, rsold and the
// iteration counter) is persisted transactionally every K iterations,
// so recovery resumes the iteration stream exactly — no recomputation
// from x alone, no convergence perturbation.

// CG solves A·x = b for a symmetric positive-definite matrix given as a
// dense row-major slice.
type CG struct {
	N     int
	A     []float64 // N×N, row-major
	B     []float64 // rhs
	X     []float64 // current iterate
	R     []float64 // residual
	P     []float64 // search direction
	RSold float64
	Iter  int
}

// NewCG initialises the solver with x0 = 0.
func NewCG(a, b []float64) (*CG, error) {
	n := len(b)
	if n == 0 || len(a) != n*n {
		return nil, fmt.Errorf("solver: cg dimensions mismatch: |A|=%d |b|=%d", len(a), len(b))
	}
	c := &CG{
		N: n, A: a, B: b,
		X: make([]float64, n),
		R: make([]float64, n),
		P: make([]float64, n),
	}
	copy(c.R, b) // r = b - A·0
	copy(c.P, c.R)
	c.RSold = dot(c.R, c.R)
	return c, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// matvec computes y = A·p.
func (c *CG) matvec(p, y []float64) {
	for i := 0; i < c.N; i++ {
		var s float64
		row := c.A[i*c.N : (i+1)*c.N]
		for j, v := range row {
			s += v * p[j]
		}
		y[i] = s
	}
}

// Step performs one CG iteration; it returns the residual norm. Once
// the residual reaches exactly zero the iteration is a stable no-op
// (the Krylov space is exhausted; continuing would divide 0/0).
func (c *CG) Step() float64 {
	if c.RSold == 0 {
		c.Iter++
		return 0
	}
	ap := make([]float64, c.N)
	c.matvec(c.P, ap)
	pap := dot(c.P, ap)
	if pap == 0 {
		c.Iter++
		return math.Sqrt(c.RSold)
	}
	alpha := c.RSold / pap
	for i := range c.X {
		c.X[i] += alpha * c.P[i]
		c.R[i] -= alpha * ap[i]
	}
	rsnew := dot(c.R, c.R)
	beta := rsnew / c.RSold
	for i := range c.P {
		c.P[i] = c.R[i] + beta*c.P[i]
	}
	c.RSold = rsnew
	c.Iter++
	return math.Sqrt(rsnew)
}

// Solve iterates until the residual drops below tol or maxIter.
func (c *CG) Solve(tol float64, maxIter int) (int, float64) {
	res := math.Sqrt(c.RSold)
	for c.Iter < maxIter && res > tol {
		res = c.Step()
	}
	return c.Iter, res
}

// Persistent CG state layout inside one pool object:
//
//	0:8    n
//	8:16   iter
//	16:24  rsold (float bits)
//	24:    x[n], r[n], p[n] (float bits each)
func cgStateSize(n int) uint64 { return uint64(24 + 3*8*n) }

// ESRState is a handle to the persisted Krylov state.
type ESRState struct {
	pool *pmem.Pool
	oid  pmem.OID
	n    int
}

// NewESRState allocates the persistent state object for an n-vector
// problem (the pool's root records nothing; callers keep the OID via
// the pool root or a checkpoint directory — here the object OID is
// stored in the pool root for simplicity).
func NewESRState(pool *pmem.Pool, n int) (*ESRState, error) {
	if n <= 0 {
		return nil, fmt.Errorf("solver: esr state for n=%d", n)
	}
	// Save snapshots the whole state in one transactional range; fail
	// here, at setup, rather than at the first Save if it cannot fit
	// the pool's undo-log lane budget.
	if limit := pool.TxSnapshotLimit(); cgStateSize(n) > limit {
		return nil, fmt.Errorf("solver: esr state for n=%d needs %d bytes, above the pool's %d-byte transaction snapshot limit", n, cgStateSize(n), limit)
	}
	root, err := pool.Root(16)
	if err != nil {
		return nil, err
	}
	oid, err := pool.Alloc(cgStateSize(n))
	if err != nil {
		return nil, err
	}
	// Publish {n, oid} in the root transactionally.
	err = pool.Update(root, 0, 16, func(b []byte) error {
		binary.LittleEndian.PutUint64(b[0:], uint64(n))
		binary.LittleEndian.PutUint64(b[8:], oid.Off)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ESRState{pool: pool, oid: oid, n: n}, nil
}

// OpenESRState reattaches to a previously created state object.
func OpenESRState(pool *pmem.Pool) (*ESRState, error) {
	root, err := pool.Root(16)
	if err != nil {
		return nil, err
	}
	n, err := pool.GetUint64(root, 0)
	if err != nil {
		return nil, err
	}
	off, err := pool.GetUint64(root, 8)
	if err != nil {
		return nil, err
	}
	if n == 0 || off == 0 {
		return nil, fmt.Errorf("solver: pool holds no ESR state")
	}
	return &ESRState{pool: pool, oid: pmem.OID{PoolID: pool.PoolID(), Off: off}, n: int(n)}, nil
}

// Save persists the solver's complete Krylov state transactionally.
func (s *ESRState) Save(c *CG) error {
	if c.N != s.n {
		return fmt.Errorf("solver: state sized for n=%d, solver has n=%d", s.n, c.N)
	}
	return s.pool.Update(s.oid, 0, cgStateSize(s.n), func(b []byte) error {
		binary.LittleEndian.PutUint64(b[0:], uint64(c.N))
		binary.LittleEndian.PutUint64(b[8:], uint64(c.Iter))
		binary.LittleEndian.PutUint64(b[16:], math.Float64bits(c.RSold))
		putVec := func(off int, v []float64) {
			for i, x := range v {
				binary.LittleEndian.PutUint64(b[off+8*i:], math.Float64bits(x))
			}
		}
		putVec(24, c.X)
		putVec(24+8*s.n, c.R)
		putVec(24+16*s.n, c.P)
		return nil
	})
}

// Restore rebuilds a CG solver from the persisted state; A and b are
// re-supplied by the application (NVM-ESR persists only the dynamic
// state — the operator is reconstructible).
func (s *ESRState) Restore(a, b []float64) (*CG, error) {
	buf, err := s.pool.View(s.oid, cgStateSize(s.n))
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint64(buf[0:]))
	if n != s.n || len(b) != n || len(a) != n*n {
		return nil, fmt.Errorf("solver: restore dimensions mismatch")
	}
	c := &CG{
		N: n, A: a, B: b,
		X: make([]float64, n),
		R: make([]float64, n),
		P: make([]float64, n),
	}
	c.Iter = int(binary.LittleEndian.Uint64(buf[8:]))
	c.RSold = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	getVec := func(off int, v []float64) {
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8*i:]))
		}
	}
	getVec(24, c.X)
	getVec(24+8*n, c.R)
	getVec(24+16*n, c.P)
	return c, nil
}

// LaplacianSystem builds the SPD tridiagonal system of a 1-D Poisson
// problem, a standard CG test operator.
func LaplacianSystem(n int) (a, b []float64) {
	a = make([]float64, n*n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 2
		if i > 0 {
			a[i*n+i-1] = -1
		}
		if i < n-1 {
			a[i*n+i+1] = -1
		}
		b[i] = 1
	}
	return a, b
}
