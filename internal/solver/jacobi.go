// Package solver provides the scientific workloads the paper's
// introduction motivates PMem/CXL persistence with: a Jacobi heat-
// diffusion solver checkpointed through internal/checkpoint, and a
// conjugate-gradient solver with NVM-ESR-style exact state
// reconstruction (§1.2 cites NVM-ESR: "recovery model for exact state
// reconstruction of linear iterative solvers using PMem"; §6 lists
// fault tolerance of codes built on PMDK as future work).
//
// Both solvers are deterministic, so a run that crashes and recovers
// from persistent state must finish bit-identical to an uninterrupted
// run — the property the tests assert.
package solver

import (
	"encoding/binary"
	"fmt"
	"math"

	"cxlpmem/internal/checkpoint"
)

// Jacobi is a 2-D heat-diffusion solver on an N×N grid with fixed
// boundary values.
type Jacobi struct {
	// N is the grid edge length (including boundary cells).
	N int
	// Grid holds the current temperatures, row-major.
	Grid []float64
	// Iter is the completed iteration count.
	Iter int

	scratch []float64
}

// NewJacobi builds a grid with a hot top edge (1.0) and cold other
// boundaries.
func NewJacobi(n int) (*Jacobi, error) {
	if n < 3 {
		return nil, fmt.Errorf("solver: grid %d too small", n)
	}
	j := &Jacobi{N: n, Grid: make([]float64, n*n), scratch: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		j.Grid[x] = 1.0 // top row
	}
	return j, nil
}

// Step advances one Jacobi iteration and returns the max residual.
func (j *Jacobi) Step() float64 {
	n := j.N
	copy(j.scratch, j.Grid)
	var maxDiff float64
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			i := y*n + x
			v := 0.25 * (j.scratch[i-1] + j.scratch[i+1] + j.scratch[i-n] + j.scratch[i+n])
			if d := math.Abs(v - j.Grid[i]); d > maxDiff {
				maxDiff = d
			}
			j.Grid[i] = v
		}
	}
	j.Iter++
	return maxDiff
}

// jacobi snapshot encoding: [n u64][iter u64][grid ...].
func (j *Jacobi) encode() []byte {
	out := make([]byte, 16+8*len(j.Grid))
	binary.LittleEndian.PutUint64(out[0:], uint64(j.N))
	binary.LittleEndian.PutUint64(out[8:], uint64(j.Iter))
	for i, v := range j.Grid {
		binary.LittleEndian.PutUint64(out[16+8*i:], math.Float64bits(v))
	}
	return out
}

func decodeJacobi(data []byte) (*Jacobi, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("solver: snapshot too short")
	}
	n := int(binary.LittleEndian.Uint64(data[0:]))
	iter := int(binary.LittleEndian.Uint64(data[8:]))
	if n < 3 || len(data) != 16+8*n*n {
		return nil, fmt.Errorf("solver: snapshot for grid %d has wrong length %d", n, len(data))
	}
	j := &Jacobi{N: n, Iter: iter, Grid: make([]float64, n*n), scratch: make([]float64, n*n)}
	for i := range j.Grid {
		j.Grid[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[16+8*i:]))
	}
	return j, nil
}

// Checkpoint saves the solver state as snapshot id, deduplicating
// against prev (0 for full).
func (j *Jacobi) Checkpoint(m *checkpoint.Manager, id, prev uint64) error {
	return m.Save(id, prev, j.encode())
}

// RestoreJacobi loads the snapshot with the given id.
func RestoreJacobi(m *checkpoint.Manager, id uint64) (*Jacobi, error) {
	data, err := m.Load(id)
	if err != nil {
		return nil, err
	}
	return decodeJacobi(data)
}

// RestoreLatestJacobi loads the most recent snapshot.
func RestoreLatestJacobi(m *checkpoint.Manager) (*Jacobi, uint64, error) {
	id, data, err := m.Latest()
	if err != nil {
		return nil, 0, err
	}
	j, err := decodeJacobi(data)
	return j, id, err
}

// RunWithCheckpoints advances the solver `iters` iterations, saving a
// snapshot every `every` iterations with incremental dedup. Snapshot
// IDs are the iteration numbers. Returns the last snapshot id (0 if
// none was taken).
func (j *Jacobi) RunWithCheckpoints(m *checkpoint.Manager, iters, every int) (uint64, error) {
	if every <= 0 {
		return 0, fmt.Errorf("solver: checkpoint interval must be positive")
	}
	var prev uint64
	for k := 0; k < iters; k++ {
		j.Step()
		if j.Iter%every == 0 {
			id := uint64(j.Iter)
			if err := j.Checkpoint(m, id, prev); err != nil {
				return prev, err
			}
			if prev != 0 {
				if err := m.Delete(prev); err != nil {
					return prev, err
				}
			}
			prev = id
		}
	}
	return prev, nil
}
