package fabric

import (
	"strings"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func TestParseMemTypes(t *testing.T) {
	cases := []struct {
		in   string
		want MemTypes
		str  string
	}{
		{"", MemAny, "any"},
		{"dram", MemDRAM, "dram"},
		{"dram,cxl", MemDRAM | MemCXL, "dram,cxl"},
		{"cxl,pmem", MemCXL | MemPMem, "cxl,pmem"},
		{" DRAM , Pmem ", MemDRAM | MemPMem, "dram,pmem"},
		{"dcpmm", MemPMem, "pmem"},
	}
	for _, c := range cases {
		got, err := ParseMemTypes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMemTypes(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if got.String() != c.str {
			t.Errorf("(%q).String() = %q, want %q", c.in, got.String(), c.str)
		}
	}
	if _, err := ParseMemTypes("dram,flash"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestMemTypesAllows(t *testing.T) {
	if !MemAny.Allows(memdev.KindDCPMM) || !MemAny.Allows(memdev.KindDRAM) {
		t.Error("zero mask must allow everything")
	}
	m := MemDRAM | MemCXL
	if !m.Allows(memdev.KindDRAM) || !m.Allows(memdev.KindCXLHDM) || m.Allows(memdev.KindDCPMM) {
		t.Errorf("dram,cxl mask misclassifies kinds")
	}
}

// addPMemPool registers a DCPMM-backed pool on the manager.
func addPMemPool(t *testing.T, m *Manager, name string, size units.Size) {
	t.Helper()
	media, err := memdev.NewDCPMM(memdev.DCPMMConfig{Name: name + "-media", Modules: 1, Capacity: size})
	if err != nil {
		t.Fatal(err)
	}
	mld, err := cxl.NewMLD(name, media)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPool(mld); err != nil {
		t.Fatal(err)
	}
}

// TestGrantHonoursMemTypeMask: a tenant restricted to pmem draws from
// the DCPMM pool even though the (first-registered) DRAM pool has free
// capacity, and a dram-only tenant fails once the DRAM pool is
// exhausted rather than silently landing on pmem.
func TestGrantHonoursMemTypeMask(t *testing.T) {
	m := testFabric(t) // 16 MiB DRAM primary pool
	addPMemPool(t, m, "pmem-pool", 16*units.MiB)

	pm, err := m.AddTenant("pmem-tenant", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMemTypes("pmem-tenant", MemPMem); err != nil {
		t.Fatal(err)
	}
	if got := pm.MemTypes(); got != MemPMem {
		t.Fatalf("mask = %v, want pmem", got)
	}
	exts, err := m.Grant("pmem-tenant", 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exts {
		if e.Pool != "pmem-pool" {
			t.Errorf("pmem-masked grant landed on pool %s", e.Pool)
		}
	}

	// A dram,cxl tenant cannot overflow onto the pmem pool.
	if _, err := m.AddTenant("dram-tenant", 32*units.MiB); err != nil {
		t.Fatal(err)
	}
	mask, err := ParseMemTypes("dram,cxl")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMemTypes("dram-tenant", mask); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("dram-tenant", 8*units.MiB); err != nil {
		t.Fatal(err) // fits in the 16 MiB DRAM pool
	}
	_, err = m.Grant("dram-tenant", 12*units.MiB) // DRAM pool exhausted
	if err == nil {
		t.Fatal("grant exceeding allowed pools accepted")
	}
	if !strings.Contains(err.Error(), "dram,cxl") {
		t.Errorf("exhaustion error %q does not name the mask", err)
	}

	// An unmasked tenant still spills across pools freely.
	if _, err := m.AddTenant("any-tenant", 16*units.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("any-tenant", 12*units.MiB); err != nil {
		t.Fatal(err)
	}

	if err := m.SetMemTypes("ghost", MemPMem); err == nil {
		t.Error("mask on unknown tenant accepted")
	}
}

// TestEvacuationHonoursMemTypeMask: re-homing a pmem-masked tenant's
// extents during pool evacuation must not land them on a DRAM pool.
func TestEvacuationHonoursMemTypeMask(t *testing.T) {
	m := testFabric(t)
	addPMemPool(t, m, "pmem-a", 16*units.MiB)
	addPMemPool(t, m, "pmem-b", 16*units.MiB)
	tn, err := m.AddTenant("pm", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMemTypes("pm", MemPMem); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("pm", 2*units.MiB); err != nil {
		t.Fatal(err)
	}
	accept(t, tn)
	if _, err := m.EvacuatePool("pmem-a"); err != nil {
		t.Fatal(err)
	}
	for _, e := range tn.Extents() {
		if e.Pool != "pmem-b" {
			t.Errorf("evacuated extent landed on %s, want pmem-b", e.Pool)
		}
	}
}
