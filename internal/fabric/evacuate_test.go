package fabric

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// sparePool builds and registers an extra MLD on the manager.
func sparePool(t *testing.T, m *Manager, name string, size units.Size) *cxl.MLD {
	t.Helper()
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: name + "-dram", Rate: 3200, Channels: 1,
		CapacityPerChannel: size,
		BatteryBacked:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mld, err := cxl.NewMLD(name, media)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPool(mld); err != nil {
		t.Fatal(err)
	}
	return mld
}

func TestEvacuatePoolMovesExtentsUnderTraffic(t *testing.T) {
	m := testFabric(t)
	tn, err := m.AddTenant("evac-host", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("evac-host", 2*units.MiB); err != nil {
		t.Fatal(err)
	}
	accept(t, tn)

	// Seed a recognisable pattern through the tenant device.
	dev := tn.Device()
	want := make([]byte, 2*units.MiB)
	for i := range want {
		want[i] = byte(i*7 + 3)
	}
	if err := dev.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}

	sparePool(t, m, "spare", 16*units.MiB)

	// Foreground traffic mutates a private window of the extent during
	// the move; a deterministic mirror tracks what must be readable.
	const fgBase = 1 << 20
	const fgLen = 64 * 1024
	var stopFg atomic.Bool
	started := make(chan struct{})
	var startedOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, fgLen)
		got := make([]byte, fgLen)
		for round := byte(1); !stopFg.Load(); round++ {
			for i := range buf {
				buf[i] = round ^ byte(i)
			}
			if err := dev.WriteAt(buf, fgBase); err != nil {
				t.Errorf("foreground write: %v", err)
				return
			}
			// Single writer: its own write must be fully visible, before,
			// during and after the migration.
			if err := dev.ReadAt(got, fgBase); err != nil {
				t.Errorf("foreground read: %v", err)
				return
			}
			if !bytes.Equal(got, buf) {
				t.Errorf("foreground round %d read back torn", round)
				return
			}
			startedOnce.Do(func() { close(started) })
		}
	}()
	<-started

	moved, err := m.EvacuatePool(m.MLD().Name())
	if err != nil {
		t.Fatalf("EvacuatePool: %v (moved %d)", err, moved)
	}
	if moved == 0 {
		t.Fatal("EvacuatePool moved nothing")
	}
	stopFg.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every extent must now live on the spare, the primary pool must be
	// fully free, and its media scrubbed to zero where the extents were.
	exts, err := m.Extents("evac-host")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exts {
		if e.Pool != "spare" {
			t.Fatalf("extent %v still on pool %s", e, e.Pool)
		}
	}
	if free := m.MLD().Remaining(); free != m.MLD().Media().Capacity() {
		t.Fatalf("source pool has %v free of %v after evacuation", free, m.MLD().Media().Capacity())
	}
	if m.PoolHealthy(m.MLD().Name()) {
		t.Fatal("evacuated pool still marked healthy")
	}

	// Full readback: the static region must be byte-identical; the
	// foreground window must hold a self-consistent round pattern.
	got := make([]byte, len(want))
	if err := dev.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:fgBase], want[:fgBase]) {
		t.Fatal("static prefix corrupted by evacuation")
	}
	if !bytes.Equal(got[fgBase+fgLen:], want[fgBase+fgLen:]) {
		t.Fatal("static suffix corrupted by evacuation")
	}
	fg := got[fgBase : fgBase+fgLen]
	round := fg[0] // buf[0] = round ^ 0
	for i, b := range fg {
		if b != round^byte(i) {
			t.Fatalf("foreground window torn at %d: %#x, want round %#x pattern", i, b, round)
		}
	}

	// The tenant is not stuck: it can still grant (now from the spare)
	// and the moved bytes remain writable.
	if _, err := m.Grant("evac-host", 64*units.KiB); err != nil {
		t.Fatalf("post-evacuation grant: %v", err)
	}
	accept(t, tn)
	if err := dev.WriteAt([]byte{0xEE}, 0); err != nil {
		t.Fatalf("post-evacuation write: %v", err)
	}
}

func TestEvacuateWithoutSpareFailsCleanly(t *testing.T) {
	m := testFabric(t)
	tn, err := m.AddTenant("lonely", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("lonely", 256*units.KiB); err != nil {
		t.Fatal(err)
	}
	accept(t, tn)
	if _, err := m.EvacuatePool(m.MLD().Name()); err == nil {
		t.Fatal("evacuation with no healthy pool succeeded")
	}
	// The data survives the failed attempt and the tenant still works.
	if err := tn.Device().WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := tn.Device().ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("readback %v", got)
	}
	// Recovery: add a spare and finish the drain.
	sparePool(t, m, "late-spare", 16*units.MiB)
	if _, err := m.EvacuatePool(m.MLD().Name()); err != nil {
		t.Fatalf("evacuation after adding spare: %v", err)
	}
	exts, err := m.Extents("lonely")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exts {
		if e.Pool != "late-spare" {
			t.Fatalf("extent %v not re-homed", e)
		}
	}
}

func TestTenantCommittedRanges(t *testing.T) {
	m := testFabric(t)
	tn, err := m.AddTenant("ranger", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("ranger", 192*units.KiB); err != nil {
		t.Fatal(err)
	}
	accept(t, tn)
	rl, ok := tn.Device().(memdev.RangeLister)
	if !ok {
		t.Fatal("tenant device does not implement RangeLister")
	}
	var total uint64
	for _, r := range rl.Committed() {
		total += r.Size
	}
	if total != uint64(192*units.KiB) {
		t.Fatalf("committed %d bytes, want %d", total, 192*units.KiB)
	}
}

// TestEvacuateMixedExtentStates drains a pool holding every extent
// state at once: an active extent migrates with its bytes, a pending
// (never-accepted) grant is re-reserved on the spare without a copy,
// and a revoked tombstone — whose media was already scrubbed and freed
// by the forced reclaim — is skipped entirely.
func TestEvacuateMixedExtentStates(t *testing.T) {
	m := testFabric(t)
	if _, err := m.EvacuatePool("no-such-pool"); err == nil {
		t.Fatal("evacuating an unknown pool succeeded")
	}

	tn, err := m.AddTenant("mixed", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("mixed", 256*units.KiB); err != nil {
		t.Fatal(err)
	}
	accept(t, tn) // active
	if _, err := m.Grant("mixed", 256*units.KiB); err != nil {
		t.Fatal(err)
	}
	// Second grant stays pending: the tenant never answers the event.

	victim, err := m.AddTenant("victim", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant("victim", 256*units.KiB); err != nil {
		t.Fatal(err)
	}
	accept(t, victim)
	if _, err := m.ForceReclaim("victim"); err != nil {
		t.Fatal(err)
	}
	// The revoked tombstone stays until the tenant acknowledges.

	want := []byte{0xC4, 0x11, 0x7e}
	if err := tn.Device().WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}

	sparePool(t, m, "spare", 16*units.MiB)
	moved, err := m.EvacuatePool(m.MLD().Name())
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 { // active + pending; the tombstone references no media
		t.Fatalf("moved %d extents, want 2", moved)
	}
	exts, err := m.Extents("mixed")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exts {
		if e.Pool != "spare" {
			t.Fatalf("extent %+v not re-homed onto the spare", e)
		}
	}
	got := make([]byte, len(want))
	if err := tn.Device().ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("active extent bytes %v after mixed-state drain, want %v", got, want)
	}
}
