package fabric

import (
	"fmt"
	"strings"

	"cxlpmem/internal/memdev"
)

// MemTypes is a per-tenant memory-technology request mask, the
// memtier-style `"dram,cxl"` / `"cxl,pmem"` annotation: which media
// kinds the fabric manager may grant the tenant capacity from. The
// zero value means no restriction.
type MemTypes uint8

const (
	// MemDRAM allows conventional DRAM-backed pools.
	MemDRAM MemTypes = 1 << iota
	// MemCXL allows CXL host-managed device memory pools.
	MemCXL
	// MemPMem allows persistent-memory (DCPMM-class) pools.
	MemPMem

	// MemAny is the zero mask: any media kind.
	MemAny MemTypes = 0
)

// ParseMemTypes parses a comma-separated request like "dram,cxl" or
// "cxl,pmem". An empty string parses to MemAny.
func ParseMemTypes(s string) (MemTypes, error) {
	var m MemTypes
	for _, f := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(f)) {
		case "":
		case "dram":
			m |= MemDRAM
		case "cxl":
			m |= MemCXL
		case "pmem", "dcpmm", "optane":
			m |= MemPMem
		default:
			return 0, fmt.Errorf("fabric: unknown memory type %q (want dram, cxl or pmem)", f)
		}
	}
	return m, nil
}

func (m MemTypes) String() string {
	if m == MemAny {
		return "any"
	}
	var parts []string
	if m&MemDRAM != 0 {
		parts = append(parts, "dram")
	}
	if m&MemCXL != 0 {
		parts = append(parts, "cxl")
	}
	if m&MemPMem != 0 {
		parts = append(parts, "pmem")
	}
	return strings.Join(parts, ",")
}

// kindMemType maps a media kind to its mask bit.
func kindMemType(k memdev.Kind) MemTypes {
	switch k {
	case memdev.KindDRAM:
		return MemDRAM
	case memdev.KindCXLHDM:
		return MemCXL
	case memdev.KindDCPMM:
		return MemPMem
	default:
		return 0
	}
}

// Allows reports whether media of kind k satisfies the mask.
func (m MemTypes) Allows(k memdev.Kind) bool {
	return m == MemAny || m&kindMemType(k) != 0
}

// SetMemTypes installs a tenant's memory-type request mask. Future
// grants draw only from pools whose media kind the mask allows;
// capacity already granted is unaffected (re-homing it is the
// evacuation machinery's job).
func (m *Manager) SetMemTypes(tenant string, mask MemTypes) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenant]
	if !ok {
		return fmt.Errorf("fabric: no tenant %s", tenant)
	}
	t.memTypes = mask
	return nil
}

// MemTypes reports the tenant's current memory-type request mask.
func (t *Tenant) MemTypes() MemTypes {
	t.mgr.mu.Lock()
	defer t.mgr.mu.Unlock()
	return t.memTypes
}
