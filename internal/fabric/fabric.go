// Package fabric implements a CXL fabric manager with Dynamic Capacity
// Device (DCD) semantics over the switch/MLD layer — the control plane
// the paper's §2 pooling prototype lacks and its §6 future work calls
// for. The manager owns a CXL 2.0 switch and the MLD behind it. Each
// tenant gets a DCD endpoint bound through its own vPPB: a Type-3
// device whose address space is a fixed quota, sparsely backed by
// *extents* the manager grants from the shared pool.
//
// The capacity lifecycle round-trips through the real device mailbox,
// as the Linux DCD path would drive it:
//
//	Grant          — the manager reserves pool capacity, maps it into
//	                 the tenant's address space as a pending extent and
//	                 queues an add-capacity event.
//	Accept/Reject  — the host answers with OpAddDCDResponse through the
//	                 tenant's mailbox; accepted extents become live
//	                 memory reachable through the root-port data path.
//	Release        — the host returns an extent with OpReleaseDCD; the
//	                 manager scrubs it and coalesces it back into the
//	                 pool's free space.
//	Forced reclaim — an unresponsive tenant's extents are revoked
//	                 immediately: the pool bytes are scrubbed and
//	                 reusable at once, and the tenant's subsequent
//	                 accesses fail with poison until it acknowledges
//	                 the reclaim by releasing the revoked extents.
//
// Control-plane state (tenants, extents, both extent allocators) is
// guarded by one manager mutex; the data plane never takes it — tenant
// capacity layouts are published to the endpoints as immutable
// snapshots (see tenantMedia), so grants and reclaims proceed while
// other tenants' traffic is in flight.
package fabric

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/units"
)

// DefaultGranule is the default extent allocation unit: 2 MiB, one
// huge page, matching the tiering migration granule.
const DefaultGranule = 2 * units.MiB

// Config tunes the manager.
type Config struct {
	// Granule is the extent allocation unit; grant sizes round up to
	// it. DefaultGranule when zero.
	Granule units.Size
}

// ExtentState tracks an extent through its lifecycle.
type ExtentState int

const (
	// ExtentPending — granted by the manager, not yet accepted by the
	// host; not reachable through the data path.
	ExtentPending ExtentState = iota
	// ExtentActive — accepted; live memory.
	ExtentActive
	// ExtentRevoked — forcibly reclaimed; the pool bytes are reusable
	// but the tenant's address range answers with poison until the
	// host acknowledges by releasing the extent.
	ExtentRevoked
)

func (s ExtentState) String() string {
	switch s {
	case ExtentPending:
		return "pending"
	case ExtentActive:
		return "active"
	case ExtentRevoked:
		return "revoked"
	default:
		return fmt.Sprintf("ExtentState(%d)", int(s))
	}
}

// ExtentInfo describes one granted extent.
type ExtentInfo struct {
	// Tenant owning the extent.
	Tenant string
	// Tag is the manager's identifier, echoed in mailbox responses.
	Tag uint64
	// DPA is the extent's base in the tenant's device address space.
	DPA uint64
	// PoolBase is the extent's base in the pool (MLD) address space.
	PoolBase uint64
	// Size in bytes.
	Size uint64
	// State of the extent.
	State ExtentState
	// Pool names the MLD backing the extent (the primary pool unless
	// the extent has been evacuated onto a spare).
	Pool string

	// frozen blocks writes while the extent's bytes migrate between
	// pools; readers keep seeing the (stable) source copy. Internal to
	// EvacuatePool.
	frozen bool
}

// DCD converts to the mailbox wire form.
func (e ExtentInfo) DCD() cxl.DCDExtent {
	return cxl.DCDExtent{Base: e.DPA, Size: e.Size, Tag: e.Tag}
}

func (e ExtentInfo) String() string {
	return fmt.Sprintf("ext#%d %s dpa[%#x+%#x) pool[%#x+%#x) %s",
		e.Tag, e.Tenant, e.DPA, e.DPA+e.Size, e.PoolBase, e.PoolBase+e.Size, e.State)
}

// EventType classifies a capacity event delivered to a host.
type EventType int

const (
	// EventAddCapacity — an extent is offered; answer with
	// OpAddDCDResponse.
	EventAddCapacity EventType = iota
	// EventReleaseRequest — the manager politely asks for an extent
	// back; answer with OpReleaseDCD.
	EventReleaseRequest
	// EventForcedReclaim — the extent was revoked; accesses now poison.
	// Acknowledge with OpReleaseDCD.
	EventForcedReclaim
)

func (t EventType) String() string {
	switch t {
	case EventAddCapacity:
		return "add-capacity"
	case EventReleaseRequest:
		return "release-request"
	case EventForcedReclaim:
		return "forced-reclaim"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one capacity event on a tenant's queue.
type Event struct {
	Type   EventType
	Extent ExtentInfo
}

func (ev Event) String() string { return ev.Type.String() + " " + ev.Extent.String() }

// Manager is the fabric manager.
type Manager struct {
	sw      *cxl.Switch
	mld     *cxl.MLD // primary pool, == pools[0].mld
	granule uint64

	mu      sync.Mutex
	pools   []*pool
	tenants map[string]*Tenant
	order   []string // registration order, for deterministic listings
	nextTag uint64

	// Cumulative control-plane counters, exposed via RegisterMetrics.
	// Atomics so the telemetry gather never takes m.mu.
	grantedExtents   atomic.Int64
	grantedBytes     atomic.Int64
	releasedExtents  atomic.Int64
	reclaimedExtents atomic.Int64
	evacuatedExtents atomic.Int64
	evacuatedBytes   atomic.Int64
}

// pool is one MLD the manager can grant from. Grants prefer pools in
// registration order and skip unhealthy ones; EvacuatePool marks a
// pool unhealthy and migrates its extents to the others.
type pool struct {
	name    string
	mld     *cxl.MLD
	healthy bool
}

// Tenant is one host's seat on the fabric: a DCD endpoint, its
// mailbox, its capacity extents and its event queue.
type Tenant struct {
	name  string
	quota uint64
	mgr   *Manager
	dev   *tenantMedia
	ep    *cxl.Type3Device
	mbox  *cxl.Mailbox
	dsp   string

	// Guarded by mgr.mu:
	space    *cxl.ExtentAllocator // the tenant's device address space
	extents  map[uint64]*ExtentInfo
	memTypes MemTypes // memory-technology request mask for new grants

	// Event queue, own lock (never held while calling out).
	evMu   sync.Mutex
	queue  []Event
	notify chan struct{}
}

// New builds a fabric manager over an existing switch and MLD. The
// manager assumes ownership of the MLD's free space; carve partitions
// either before handing it over or not at all.
func New(sw *cxl.Switch, mld *cxl.MLD, cfg Config) (*Manager, error) {
	if sw == nil || mld == nil {
		return nil, fmt.Errorf("fabric: nil switch or MLD")
	}
	granule := cfg.Granule
	if granule == 0 {
		granule = DefaultGranule
	}
	if granule <= 0 || granule%units.CacheLine != 0 {
		return nil, fmt.Errorf("fabric: granule %d not a positive line multiple", granule)
	}
	return &Manager{
		sw:      sw,
		mld:     mld,
		granule: uint64(granule),
		pools:   []*pool{{name: mld.Name(), mld: mld, healthy: true}},
		tenants: make(map[string]*Tenant),
		nextTag: 1,
	}, nil
}

// AddPool registers an additional MLD the manager may grant from — the
// spare capacity evacuation migrates onto.
func (m *Manager) AddPool(mld *cxl.MLD) error {
	if mld == nil {
		return fmt.Errorf("fabric: nil pool")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.pools {
		if p.name == mld.Name() {
			return fmt.Errorf("fabric: pool %s already registered", mld.Name())
		}
	}
	m.pools = append(m.pools, &pool{name: mld.Name(), mld: mld, healthy: true})
	return nil
}

// Pools lists pool names in registration order (primary first).
func (m *Manager) Pools() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.pools))
	for i, p := range m.pools {
		out[i] = p.name
	}
	return out
}

// PoolMedia returns the named pool's backing media — what the RAS
// patrol scrubber walks for appliance-side latent faults.
func (m *Manager) PoolMedia(name string) (memdev.Device, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.poolLocked(name)
	if p == nil {
		return nil, false
	}
	return p.mld.Media(), true
}

// PoolHealthy reports whether the named pool accepts grants.
func (m *Manager) PoolHealthy(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.poolLocked(name)
	return p != nil && p.healthy
}

// SetPoolHealthy marks a pool (un)grantable without moving anything.
func (m *Manager) SetPoolHealthy(name string, healthy bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.poolLocked(name)
	if p == nil {
		return fmt.Errorf("fabric: no pool %s", name)
	}
	p.healthy = healthy
	return nil
}

func (m *Manager) poolLocked(name string) *pool {
	for _, p := range m.pools {
		if p.name == name {
			return p
		}
	}
	return nil
}

// Switch returns the managed switch.
func (m *Manager) Switch() *cxl.Switch { return m.sw }

// MLD returns the managed pool device.
func (m *Manager) MLD() *cxl.MLD { return m.mld }

// Granule reports the extent allocation unit.
func (m *Manager) Granule() units.Size { return units.Size(m.granule) }

// Remaining reports unreserved capacity summed over healthy pools.
func (m *Manager) Remaining() units.Size {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remainingLocked()
}

func (m *Manager) remainingLocked() units.Size {
	var n units.Size
	for _, p := range m.pools {
		if p.healthy {
			n += p.mld.Remaining()
		}
	}
	return n
}

// allocAnyLocked reserves up to size bytes from the first healthy pool
// with free space whose media kind the mask allows (MemAny matches
// every pool).
func (m *Manager) allocAnyLocked(size units.Size, mask MemTypes) (cxl.Extent, *pool, bool) {
	for _, p := range m.pools {
		if !p.healthy || !mask.Allows(p.mld.Media().Profile().Kind) {
			continue
		}
		if ext, ok := p.mld.AllocExtentAny(size); ok {
			return ext, p, true
		}
	}
	return cxl.Extent{}, nil, false
}

// AddTenant registers a tenant with a fixed address-space quota,
// builds its DCD endpoint (device + mailbox + poison hooks) and binds
// it through the switch on a vPPB named after the tenant. The tenant
// starts with no capacity; everything arrives through Grant.
func (m *Manager) AddTenant(name string, quota units.Size) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("fabric: empty tenant name")
	}
	if quota <= 0 || uint64(quota)%m.granule != 0 {
		return nil, fmt.Errorf("fabric: tenant %s: quota %v not a positive multiple of granule %v", name, quota, m.Granule())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tenants[name]; ok {
		return nil, fmt.Errorf("fabric: tenant %s already registered", name)
	}
	dev := newTenantMedia("dcd-"+name, m.mld.Media(), uint64(quota))
	ep, err := cxl.NewType3("dcd-"+name, cxl.CXLVendorID, 0x0DC0, dev)
	if err != nil {
		return nil, err
	}
	mbox, err := cxl.NewMailbox(ep, "fm-1.0")
	if err != nil {
		return nil, err
	}
	space, err := cxl.NewExtentAllocator(quota)
	if err != nil {
		return nil, err
	}
	t := &Tenant{
		name:    name,
		quota:   uint64(quota),
		mgr:     m,
		dev:     dev,
		ep:      ep,
		mbox:    mbox,
		dsp:     "dsp-" + name,
		space:   space,
		extents: make(map[uint64]*ExtentInfo),
		notify:  make(chan struct{}, 1),
	}
	mbox.SetDCD(&tenantDCD{t})
	// RAS hooks: revoked extents answer with poison, composed with the
	// mailbox's injected-poison list. Installed after NewMailbox so the
	// combined checker replaces the mailbox's own registration.
	ep.SetPoisonChecker(func(dpa uint64) bool {
		return dev.revokedAt(dpa) || mbox.IsPoisoned(dpa)
	})
	ep.SetPoisonSpanChecker(func(dpa, n uint64) bool {
		return dev.revokedIn(dpa, n) || mbox.HasPoisonIn(dpa, n)
	})
	if err := m.sw.AddDownstream(t.dsp, ep); err != nil {
		return nil, err
	}
	if err := m.sw.Bind(name, t.dsp); err != nil {
		_ = m.sw.RemoveDownstream(t.dsp)
		return nil, err
	}
	m.tenants[name] = t
	m.order = append(m.order, name)
	return t, nil
}

// Tenant looks up a registered tenant.
func (m *Manager) Tenant(name string) (*Tenant, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	return t, ok
}

// Tenants lists tenant names in registration order.
func (m *Manager) Tenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// committedLocked sums the tenant-space bytes all extents of t hold
// (pending, active and revoked alike — revoked extents still occupy
// the tenant's address space until acknowledged).
func committedLocked(t *Tenant) uint64 {
	var n uint64
	for _, e := range t.extents {
		n += e.Size
	}
	return n
}

// Grant reserves size bytes (rounded up to the granule) of pool
// capacity for a tenant as one or more pending extents, and queues an
// add-capacity event per extent. A fragmented pool yields several
// smaller extents; if the demand cannot be met in full, nothing is
// reserved. The grant becomes usable memory only after the host
// accepts it through the mailbox.
func (m *Manager) Grant(tenant string, size units.Size) ([]ExtentInfo, error) {
	if size <= 0 {
		return nil, fmt.Errorf("fabric: grant of %d bytes", size)
	}
	want := (uint64(size) + m.granule - 1) / m.granule * m.granule
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("fabric: no tenant %s", tenant)
	}
	if committedLocked(t)+want > t.quota {
		return nil, fmt.Errorf("fabric: tenant %s: grant %v exceeds quota %v (%v committed)",
			tenant, units.Size(want), units.Size(t.quota), units.Size(committedLocked(t)))
	}
	var granted []ExtentInfo
	rollback := func() {
		for _, e := range granted {
			if err := m.poolLocked(e.Pool).mld.ReleaseExtent(cxl.Extent{Base: e.PoolBase, Size: e.Size}); err != nil {
				panic(fmt.Sprintf("fabric: grant rollback: %v", err))
			}
			if err := t.space.Free(cxl.Extent{Base: e.DPA, Size: e.Size}); err != nil {
				panic(fmt.Sprintf("fabric: grant rollback: %v", err))
			}
			delete(t.extents, e.Tag)
		}
	}
	for remaining := want; remaining > 0; {
		spaceExt, ok := t.space.AllocAny(units.Size(remaining))
		if !ok {
			rollback()
			return nil, fmt.Errorf("fabric: tenant %s: address space exhausted", tenant)
		}
		poolExt, pl, ok := m.allocAnyLocked(units.Size(spaceExt.Size), t.memTypes)
		if !ok {
			if err := t.space.Free(spaceExt); err != nil {
				panic(fmt.Sprintf("fabric: grant rollback: %v", err))
			}
			rollback()
			return nil, fmt.Errorf("fabric: pool exhausted granting %v to %s (%v free, memory types %v)",
				units.Size(want), tenant, m.remainingLocked(), t.memTypes)
		}
		if poolExt.Size < spaceExt.Size {
			// Hand the unused tail of the address-space reservation back.
			if err := t.space.Free(cxl.Extent{Base: spaceExt.Base + poolExt.Size, Size: spaceExt.Size - poolExt.Size}); err != nil {
				panic(fmt.Sprintf("fabric: grant split: %v", err))
			}
			spaceExt.Size = poolExt.Size
		}
		info := &ExtentInfo{
			Tenant:   tenant,
			Tag:      m.nextTag,
			DPA:      spaceExt.Base,
			PoolBase: poolExt.Base,
			Size:     poolExt.Size,
			State:    ExtentPending,
			Pool:     pl.name,
		}
		m.nextTag++
		t.extents[info.Tag] = info
		granted = append(granted, *info)
		remaining -= poolExt.Size
	}
	m.grantedExtents.Add(int64(len(granted)))
	m.grantedBytes.Add(int64(want))
	for _, e := range granted {
		t.push(Event{Type: EventAddCapacity, Extent: e})
	}
	return granted, nil
}

// publishTableLocked rebuilds and publishes a tenant's data-path
// mapping table from its active and revoked extents; caller holds m.mu.
func publishTableLocked(t *Tenant) {
	m := t.mgr
	table := make([]mapping, 0, len(t.extents))
	for _, e := range t.extents {
		if e.State == ExtentPending {
			continue
		}
		table = append(table, mapping{
			dpa:      e.DPA,
			poolBase: e.PoolBase,
			size:     e.Size,
			pool:     m.poolLocked(e.Pool).mld.Media(),
			revoked:  e.State == ExtentRevoked,
			frozen:   e.frozen,
		})
	}
	sort.Slice(table, func(a, b int) bool { return table[a].dpa < table[b].dpa })
	t.dev.setTable(table)
}

// lookupLocked validates a mailbox-supplied extent reference against
// the manager's record.
func lookupLocked(t *Tenant, ext cxl.DCDExtent) (*ExtentInfo, error) {
	rec, ok := t.extents[ext.Tag]
	if !ok {
		return nil, fmt.Errorf("fabric: tenant %s: unknown extent tag %d", t.name, ext.Tag)
	}
	if rec.DPA != ext.Base || rec.Size != ext.Size {
		return nil, fmt.Errorf("fabric: tenant %s: extent #%d is dpa[%#x+%#x), host said [%#x+%#x)",
			t.name, ext.Tag, rec.DPA, rec.DPA+rec.Size, ext.Base, ext.Base+ext.Size)
	}
	return rec, nil
}

// addCapacityResponse completes a pending grant (mailbox path).
func (m *Manager) addCapacityResponse(t *Tenant, ext cxl.DCDExtent, accept bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := lookupLocked(t, ext)
	if err != nil {
		return err
	}
	if rec.State != ExtentPending {
		return fmt.Errorf("fabric: tenant %s: extent #%d is %s, not pending", t.name, rec.Tag, rec.State)
	}
	if !accept {
		return m.dropLocked(t, rec, false)
	}
	rec.State = ExtentActive
	publishTableLocked(t)
	return nil
}

// releaseCapacity returns an extent to the pool (mailbox path). An
// active extent is scrubbed and freed; a revoked extent's pool bytes
// were already reclaimed, so releasing it just clears the poisoned
// tombstone from the tenant's address space.
func (m *Manager) releaseCapacity(t *Tenant, ext cxl.DCDExtent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := lookupLocked(t, ext)
	if err != nil {
		return err
	}
	switch rec.State {
	case ExtentActive:
		if err := m.dropLocked(t, rec, true); err != nil {
			return err
		}
		m.releasedExtents.Add(1)
		return nil
	case ExtentRevoked:
		if err := t.space.Free(cxl.Extent{Base: rec.DPA, Size: rec.Size}); err != nil {
			return err
		}
		delete(t.extents, rec.Tag)
		publishTableLocked(t)
		m.releasedExtents.Add(1)
		return nil
	default:
		return fmt.Errorf("fabric: tenant %s: extent #%d is %s, not releasable", t.name, rec.Tag, rec.State)
	}
}

// dropLocked removes an extent whose pool bytes are still reserved
// (pending or active), scrubbing them if they were ever mapped. Order
// matters: the mapping is unpublished and in-flight accesses drained
// *before* the bytes are scrubbed and returned to the pool, so a
// straggling write through the old table cannot dirty capacity that a
// concurrent grant hands to another tenant.
func (m *Manager) dropLocked(t *Tenant, rec *ExtentInfo, scrub bool) error {
	pl := m.poolLocked(rec.Pool)
	delete(t.extents, rec.Tag)
	publishTableLocked(t)
	t.dev.drain()
	if scrub {
		// One scrub implementation for free/forced-reclaim and the RAS
		// patrol repair path: ras.ZeroFill, so the two cannot diverge.
		if err := ras.ZeroFill(pl.mld.Media(), rec.PoolBase, rec.Size); err != nil {
			return err
		}
	}
	if err := pl.mld.ReleaseExtent(cxl.Extent{Base: rec.PoolBase, Size: rec.Size}); err != nil {
		return err
	}
	return t.space.Free(cxl.Extent{Base: rec.DPA, Size: rec.Size})
}

// RequestRelease queues polite release-request events covering at
// least size bytes of a tenant's active extents (most recent first).
// The host is expected to answer each with OpReleaseDCD; no state
// changes until it does.
func (m *Manager) RequestRelease(tenant string, size units.Size) ([]ExtentInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("fabric: no tenant %s", tenant)
	}
	active := activeSortedLocked(t)
	var asked []ExtentInfo
	var total uint64
	for i := len(active) - 1; i >= 0 && total < uint64(size); i-- {
		asked = append(asked, active[i])
		total += active[i].Size
	}
	if total < uint64(size) {
		return nil, fmt.Errorf("fabric: tenant %s holds %v active, cannot release %v",
			tenant, units.Size(total), size)
	}
	for _, e := range asked {
		t.push(Event{Type: EventReleaseRequest, Extent: e})
	}
	return asked, nil
}

// ForceReclaim revokes every active extent of an unresponsive tenant:
// the pool bytes are scrubbed and immediately re-grantable, and the
// tenant's accesses to the revoked ranges fail with poison until it
// acknowledges each reclaim with OpReleaseDCD. Pending extents are
// cancelled outright. Returns the revoked extents.
func (m *Manager) ForceReclaim(tenant string) ([]ExtentInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("fabric: no tenant %s", tenant)
	}
	// Revoke first — the new table poisons the ranges — and drain
	// in-flight accesses before scrubbing and freeing the pool bytes,
	// so no straggling write through the old layout survives into a
	// re-grant.
	var revoked []ExtentInfo
	for _, rec := range sortedLocked(t) {
		switch rec.State {
		case ExtentPending:
			if err := m.dropLocked(t, t.extents[rec.Tag], false); err != nil {
				return revoked, err
			}
		case ExtentActive:
			live := t.extents[rec.Tag]
			live.State = ExtentRevoked
			revoked = append(revoked, *live)
		}
	}
	publishTableLocked(t)
	t.dev.drain()
	for _, e := range revoked {
		pl := m.poolLocked(e.Pool)
		if err := ras.ZeroFill(pl.mld.Media(), e.PoolBase, e.Size); err != nil {
			return revoked, err
		}
		if err := pl.mld.ReleaseExtent(cxl.Extent{Base: e.PoolBase, Size: e.Size}); err != nil {
			return revoked, err
		}
	}
	m.reclaimedExtents.Add(int64(len(revoked)))
	for _, e := range revoked {
		t.push(Event{Type: EventForcedReclaim, Extent: e})
	}
	return revoked, nil
}

// sortedLocked snapshots a tenant's extents ordered by DPA.
func sortedLocked(t *Tenant) []ExtentInfo {
	out := make([]ExtentInfo, 0, len(t.extents))
	for _, e := range t.extents {
		out = append(out, *e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].DPA < out[b].DPA })
	return out
}

func activeSortedLocked(t *Tenant) []ExtentInfo {
	all := sortedLocked(t)
	out := all[:0]
	for _, e := range all {
		if e.State == ExtentActive {
			out = append(out, e)
		}
	}
	return out
}

// Extents snapshots a tenant's extents ordered by DPA.
func (m *Manager) Extents(tenant string) ([]ExtentInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("fabric: no tenant %s", tenant)
	}
	return sortedLocked(t), nil
}

// Describe renders the fabric state.
func (m *Manager) Describe() string {
	m.mu.Lock()
	names := make([]string, len(m.order))
	copy(names, m.order)
	m.mu.Unlock()
	s := fmt.Sprintf("fabric manager: switch %s, pool %s (%v free of %v), granule %v, %d tenant(s)\n",
		m.sw.Name(), m.mld.Name(), m.mld.Remaining(), m.mld.Media().Capacity(), m.Granule(), len(names))
	for _, name := range names {
		t, ok := m.Tenant(name)
		if !ok {
			continue
		}
		exts, _ := m.Extents(name)
		s += fmt.Sprintf("  %s: quota %v, %v active in %d extent(s), vPPB %q -> %s\n",
			name, units.Size(t.quota), t.Active(), len(exts), name, t.dsp)
		for _, e := range exts {
			s += "    " + e.String() + "\n"
		}
	}
	return s
}

// tenantDCD adapts a tenant to the mailbox's DCDBackend — the commands
// a host issues against its own device land here.
type tenantDCD struct{ t *Tenant }

func (b *tenantDCD) DCDConfig() cxl.DCDConfig {
	return cxl.DCDConfig{TotalCapacity: b.t.quota, Granule: b.t.mgr.granule}
}

func (b *tenantDCD) DCDExtents() []cxl.DCDExtent {
	b.t.mgr.mu.Lock()
	defer b.t.mgr.mu.Unlock()
	var out []cxl.DCDExtent
	for _, e := range sortedLocked(b.t) {
		if e.State != ExtentPending {
			out = append(out, e.DCD())
		}
	}
	return out
}

func (b *tenantDCD) AddCapacityResponse(ext cxl.DCDExtent, accept bool) error {
	return b.t.mgr.addCapacityResponse(b.t, ext, accept)
}

func (b *tenantDCD) ReleaseCapacity(ext cxl.DCDExtent) error {
	return b.t.mgr.releaseCapacity(b.t, ext)
}

// --- Tenant accessors ----------------------------------------------------

// Name returns the tenant name (also its vPPB on the switch).
func (t *Tenant) Name() string { return t.name }

// Quota returns the tenant's address-space size.
func (t *Tenant) Quota() units.Size { return units.Size(t.quota) }

// Endpoint returns the tenant's DCD endpoint (what the switch binds).
func (t *Tenant) Endpoint() *cxl.Type3Device { return t.ep }

// Mailbox returns the tenant device's command mailbox — the host-side
// handle for accepting and releasing capacity.
func (t *Tenant) Mailbox() *cxl.Mailbox { return t.mbox }

// Device returns the tenant's media view: quota-sized, extent-backed.
// Its Stats count every byte the tenant moves — the QoS throttle's
// input.
func (t *Tenant) Device() memdev.Device { return t.dev }

// Active sums the tenant's accepted capacity.
func (t *Tenant) Active() units.Size {
	t.mgr.mu.Lock()
	defer t.mgr.mu.Unlock()
	var n uint64
	for _, e := range t.extents {
		if e.State == ExtentActive {
			n += e.Size
		}
	}
	return units.Size(n)
}

// Extents snapshots the tenant's extents, sorted by grant tag — the
// placement view fabricctl renders.
func (t *Tenant) Extents() []ExtentInfo {
	t.mgr.mu.Lock()
	defer t.mgr.mu.Unlock()
	out := make([]ExtentInfo, 0, len(t.extents))
	for _, e := range sortedLocked(t) {
		out = append(out, e)
	}
	return out
}

// push queues an event and pokes the notifier.
func (t *Tenant) push(ev Event) {
	t.evMu.Lock()
	t.queue = append(t.queue, ev)
	t.evMu.Unlock()
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// Events drains the tenant's pending capacity events.
func (t *Tenant) Events() []Event {
	t.evMu.Lock()
	defer t.evMu.Unlock()
	out := t.queue
	t.queue = nil
	return out
}

// TakeEvents removes and returns the queued events matching the
// filter, leaving everything else queued in order — for host agents
// that answer one operation's events without consuming (and silently
// dropping) unrelated ones. The filter must not call back into the
// tenant or manager.
func (t *Tenant) TakeEvents(match func(Event) bool) []Event {
	t.evMu.Lock()
	defer t.evMu.Unlock()
	var taken []Event
	rest := t.queue[:0]
	for _, ev := range t.queue {
		if match(ev) {
			taken = append(taken, ev)
		} else {
			rest = append(rest, ev)
		}
	}
	t.queue = rest
	return taken
}

// Notify returns a channel that receives a token whenever events are
// queued; drain with Events.
func (t *Tenant) Notify() <-chan struct{} { return t.notify }
