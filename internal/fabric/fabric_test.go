package fabric

import (
	"bytes"
	"sync"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// testFabric builds a manager over a 16 MiB pool with a 64 KiB granule.
func testFabric(t *testing.T) *Manager {
	t.Helper()
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "pool-dram", Rate: 3200, Channels: 1,
		CapacityPerChannel: 16 * units.MiB,
		BatteryBacked:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mld, err := cxl.NewMLD("pool", media)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cxl.NewSwitch("fab-sw"), mld, Config{Granule: 64 * units.KiB})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// hostFor trains a root port against a tenant's endpoint through the
// switch and enumerates its window — the host side of the fabric.
func hostFor(t *testing.T, m *Manager, tenant string) (*cxl.RootPort, cxl.MemWindow) {
	t.Helper()
	ep, ok := m.Switch().EndpointFor(tenant)
	if !ok {
		t.Fatalf("no endpoint for vPPB %s", tenant)
	}
	link, err := interconnect.NewPCIe("pcie-"+tenant, interconnect.KindPCIe5, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp := cxl.NewRootPort("rp-"+tenant, link)
	if err := rp.Attach(ep); err != nil {
		t.Fatal(err)
	}
	h, err := cxl.Enumerate(0, rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Windows) != 1 {
		t.Fatalf("enumerated %d windows", len(h.Windows))
	}
	return rp, h.Windows[0]
}

// accept answers every queued add-capacity event through the mailbox.
func accept(t *testing.T, tn *Tenant) []ExtentInfo {
	t.Helper()
	var out []ExtentInfo
	for _, ev := range tn.Events() {
		if ev.Type != EventAddCapacity {
			continue
		}
		_, status := tn.Mailbox().Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ev.Extent.DCD(), true))
		if status != cxl.MboxSuccess {
			t.Fatalf("accept %v: %v", ev.Extent, status)
		}
		ev.Extent.State = ExtentActive
		out = append(out, ev.Extent)
	}
	return out
}

// release returns extents through the mailbox.
func release(t *testing.T, tn *Tenant, exts []ExtentInfo) {
	t.Helper()
	for _, e := range exts {
		_, status := tn.Mailbox().Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(e.DCD()))
		if status != cxl.MboxSuccess {
			t.Fatalf("release %v: %v", e, status)
		}
	}
}

// TestGrantUseReleaseRegrant is the subsystem's acceptance path: a
// tenant is granted capacity, uses it through the real root-port data
// path, releases it, and the pool returns to its initial state; the
// same bytes are then immediately re-grantable.
func TestGrantUseReleaseRegrant(t *testing.T) {
	m := testFabric(t)
	initial := m.Remaining()
	tn, err := m.AddTenant("alice", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	rp, w := hostFor(t, m, "alice")
	if w.Size != uint64(4*units.MiB) {
		t.Fatalf("window size %#x, want the quota", w.Size)
	}

	// Nothing granted yet: the window exists but has no backing.
	buf := make([]byte, 4096)
	if err := rp.ReadBurst(w.Base, buf); err == nil {
		t.Fatal("read from ungranted capacity succeeded")
	}

	exts, err := m.Grant("alice", units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if m.Remaining() != initial-units.MiB {
		t.Errorf("remaining = %v after grant", m.Remaining())
	}
	// Pending ≠ usable: the host has not accepted yet.
	if err := rp.ReadBurst(w.Base+exts[0].DPA, buf); err == nil {
		t.Fatal("read from pending extent succeeded")
	}
	active := accept(t, tn)
	if len(active) != len(exts) {
		t.Fatalf("accepted %d extents, granted %d", len(active), len(exts))
	}
	if tn.Active() != units.MiB {
		t.Errorf("active = %v, want 1 MiB", tn.Active())
	}

	// Use: write and read back through the full port/flit/switch path.
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	addr := w.Base + active[0].DPA
	if err := rp.WriteBurst(addr, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(buf))
	if err := rp.ReadBurst(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("data round trip through granted extent mismatched")
	}

	// Release everything: no leaked bytes anywhere.
	release(t, tn, active)
	if m.Remaining() != initial {
		t.Errorf("remaining = %v after release, want %v", m.Remaining(), initial)
	}
	if tn.Active() != 0 {
		t.Errorf("active = %v after release", tn.Active())
	}
	if err := rp.ReadBurst(addr, got); err == nil {
		t.Error("read from released extent succeeded")
	}

	// Re-grant: the same capacity comes back — scrubbed.
	exts2, err := m.Grant("alice", units.MiB)
	if err != nil {
		t.Fatalf("re-grant failed: %v", err)
	}
	active2 := accept(t, tn)
	_ = exts2
	if err := rp.ReadBurst(w.Base+active2[0].DPA, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("re-granted extent leaks previous contents at %d: %#x", i, b)
		}
	}
}

// TestForcedReclaimPoisonsAccess checks the unresponsive-tenant path:
// revoked extents poison subsequent access, the capacity is
// immediately re-grantable to another tenant (scrubbed), and the
// revoked tenant's address space clears once it acknowledges.
func TestForcedReclaimPoisonsAccess(t *testing.T) {
	m := testFabric(t)
	initial := m.Remaining()
	bad, err := m.AddTenant("bad", 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	good, err := m.AddTenant("good", 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	rpBad, wBad := hostFor(t, m, "bad")
	rpGood, wGood := hostFor(t, m, "good")

	if _, err := m.Grant("bad", units.MiB); err != nil {
		t.Fatal(err)
	}
	exts := accept(t, bad)
	addr := wBad.Base + exts[0].DPA
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xBD
	}
	if err := rpBad.WriteBurst(addr, buf); err != nil {
		t.Fatal(err)
	}

	revoked, err := m.ForceReclaim("bad")
	if err != nil {
		t.Fatal(err)
	}
	if len(revoked) == 0 {
		t.Fatal("nothing revoked")
	}
	// Poison: bursts and single lines both fail.
	if err := rpBad.ReadBurst(addr, buf); err == nil {
		t.Error("burst read of revoked extent succeeded")
	}
	var line [64]byte
	if err := rpBad.ReadLine(addr, &line); err == nil {
		t.Error("line read of revoked extent succeeded")
	}
	if err := rpBad.WriteBurst(addr, buf); err == nil {
		t.Error("burst write to revoked extent succeeded")
	}
	// The reclaimed pool bytes are free again immediately — only the
	// bad tenant's revoked-but-unacknowledged address range stays
	// occupied, and that is tenant space, not pool space. Re-granting
	// the bytes to the other tenant must not leak the bad tenant's data.
	if m.Remaining() != initial {
		t.Errorf("remaining = %v after reclaim, want %v", m.Remaining(), initial)
	}
	if _, err := m.Grant("good", 2*units.MiB); err != nil {
		t.Fatal(err)
	}
	gexts := accept(t, good)
	got := make([]byte, 4096)
	for _, e := range gexts {
		if err := rpGood.ReadBurst(wGood.Base+e.DPA, got); err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			if b != 0 {
				t.Fatalf("re-granted extent leaks revoked tenant's data at %d: %#x", i, b)
			}
		}
	}

	// The bad tenant sees forced-reclaim events and acknowledges; its
	// address space clears, the poison tombstone goes away (the range
	// is now unmapped, still unreadable).
	var acks []ExtentInfo
	for _, ev := range bad.Events() {
		if ev.Type == EventForcedReclaim {
			acks = append(acks, ev.Extent)
		}
	}
	if len(acks) != len(revoked) {
		t.Fatalf("got %d reclaim events for %d revoked extents", len(acks), len(revoked))
	}
	release(t, bad, acks)
	left, err := m.Extents("bad")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("extents after acknowledge: %v", left)
	}
	// The tenant can be granted fresh capacity again.
	if _, err := m.Grant("bad", 64*units.KiB); err != nil {
		t.Fatalf("grant after acknowledged reclaim: %v", err)
	}
	accept(t, bad)
}

// TestGrantRejectAndQuota covers the host rejecting an offer and the
// quota ceiling.
func TestGrantRejectAndQuota(t *testing.T) {
	m := testFabric(t)
	initial := m.Remaining()
	tn, err := m.AddTenant("alice", units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	// Reject: capacity returns to the pool, nothing stays committed.
	if _, err := m.Grant("alice", 512*units.KiB); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tn.Events() {
		_, status := tn.Mailbox().Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ev.Extent.DCD(), false))
		if status != cxl.MboxSuccess {
			t.Fatalf("reject: %v", status)
		}
	}
	if m.Remaining() != initial {
		t.Errorf("remaining = %v after reject, want %v", m.Remaining(), initial)
	}
	// Quota: grants beyond the tenant's address space are refused.
	if _, err := m.Grant("alice", 2*units.MiB); err == nil {
		t.Error("grant beyond quota accepted")
	}
	if _, err := m.Grant("alice", units.MiB); err != nil {
		t.Fatal(err)
	}
	accept(t, tn)
	if _, err := m.Grant("alice", 64*units.KiB); err == nil {
		t.Error("grant beyond quota accepted after fill")
	}
	// Granule rounding: an odd size rounds up.
	tn2, err := m.AddTenant("bob", units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	exts, err := m.Grant("bob", 10*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, e := range exts {
		total += e.Size
	}
	if total != uint64(64*units.KiB) {
		t.Errorf("10 KiB grant reserved %d bytes, want one 64 KiB granule", total)
	}
	accept(t, tn2)
}

// TestFragmentedGrant checks that a grant larger than any free run is
// satisfied as multiple extents, and that mailbox state queries see
// them all.
func TestFragmentedGrant(t *testing.T) {
	m := testFabric(t)
	tn, err := m.AddTenant("alice", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	// Fragment the pool: carve three raw extents, free the middle one,
	// then pin the rest so only scattered holes remain.
	a, err := m.MLD().AllocExtent(6 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MLD().AllocExtent(4 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MLD().ReleaseExtent(cxl.Extent{Base: a.Base + uint64(2*units.MiB), Size: uint64(2 * units.MiB)}); err != nil {
		t.Fatal(err)
	}
	// Free space: a 2 MiB hole inside a, plus the 6 MiB tail.
	exts, err := m.Grant("alice", 8*units.MiB)
	if err != nil {
		t.Fatalf("fragmented grant failed: %v", err)
	}
	if len(exts) < 2 {
		t.Fatalf("fragmented grant yielded %d extent(s), want ≥2", len(exts))
	}
	accept(t, tn)
	if tn.Active() != 8*units.MiB {
		t.Errorf("active = %v, want 8 MiB", tn.Active())
	}
	// The mailbox extent list matches the manager's records.
	out, status := tn.Mailbox().Execute(cxl.OpGetDCDExtentList, nil)
	if status != cxl.MboxSuccess {
		t.Fatal(status)
	}
	list, err := cxl.DecodeDCDExtentList(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != len(exts) {
		t.Errorf("mailbox lists %d extents, manager granted %d", len(list), len(exts))
	}
	// And the config reports quota + granule.
	out, status = tn.Mailbox().Execute(cxl.OpGetDCDConfig, nil)
	if status != cxl.MboxSuccess {
		t.Fatal(status)
	}
	cfg, err := cxl.DecodeDCDConfig(out)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TotalCapacity != uint64(8*units.MiB) || cfg.Granule != uint64(64*units.KiB) {
		t.Errorf("config = %+v", cfg)
	}
	// Cleanup path: release everything, expect full coalescing modulo
	// the two pinned raw extents.
	release(t, tn, accept(t, tn))
	_ = b
}

// TestMailboxDCDValidation exercises the malformed/stale inputs a host
// can throw at the DCD command set.
func TestMailboxDCDValidation(t *testing.T) {
	m := testFabric(t)
	tn, err := m.AddTenant("alice", units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	mbox := tn.Mailbox()
	if _, status := mbox.Execute(cxl.OpAddDCDResponse, []byte{1, 2, 3}); status != cxl.MboxInvalidInput {
		t.Errorf("short payload: %v", status)
	}
	if _, status := mbox.Execute(cxl.OpReleaseDCD, nil); status != cxl.MboxInvalidInput {
		t.Errorf("nil payload: %v", status)
	}
	// Unknown tag.
	bogus := cxl.DCDExtent{Base: 0, Size: uint64(64 * units.KiB), Tag: 999}
	if _, status := mbox.Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(bogus, true)); status != cxl.MboxInvalidInput {
		t.Errorf("unknown tag accepted: %v", status)
	}
	if _, status := mbox.Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(bogus)); status != cxl.MboxInvalidInput {
		t.Errorf("unknown tag released: %v", status)
	}
	// Mismatched geometry on a real tag.
	exts, err := m.Grant("alice", 64*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	wrong := exts[0].DCD()
	wrong.Size *= 2
	if _, status := mbox.Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(wrong, true)); status != cxl.MboxInvalidInput {
		t.Errorf("mismatched extent accepted: %v", status)
	}
	// Double accept.
	ok := exts[0].DCD()
	if _, status := mbox.Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ok, true)); status != cxl.MboxSuccess {
		t.Fatalf("accept: %v", status)
	}
	if _, status := mbox.Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ok, true)); status != cxl.MboxInvalidInput {
		t.Errorf("double accept: %v", status)
	}
	// Double release.
	if _, status := mbox.Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(ok)); status != cxl.MboxSuccess {
		t.Fatalf("release: %v", status)
	}
	if _, status := mbox.Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(ok)); status != cxl.MboxInvalidInput {
		t.Errorf("double release: %v", status)
	}
	// A device without a DCD backend reports unsupported.
	plain, err := cxl.NewType3("plain", cxl.CXLVendorID, 1, tn.Device())
	if err != nil {
		t.Fatal(err)
	}
	pm, err := cxl.NewMailbox(plain, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, status := pm.Execute(cxl.OpGetDCDConfig, nil); status != cxl.MboxUnsupported {
		t.Errorf("DCD on plain device: %v", status)
	}
}

// TestConcurrentGrantReclaimUnderTraffic races the fabric control
// plane against tenants' data planes: one tenant streams bursts over a
// stable extent while the manager grants, reclaims and re-grants
// capacity for a second tenant, and the second tenant keeps poking its
// (appearing and vanishing) extents. Run under -race on CI.
func TestConcurrentGrantReclaimUnderTraffic(t *testing.T) {
	m := testFabric(t)
	steady, err := m.AddTenant("steady", 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	churny, err := m.AddTenant("churny", 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	rpS, wS := hostFor(t, m, "steady")
	rpC, wC := hostFor(t, m, "churny")
	if _, err := m.Grant("steady", units.MiB); err != nil {
		t.Fatal(err)
	}
	sExts := accept(t, steady)

	var wg sync.WaitGroup
	var steadyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		got := make([]byte, 4096)
		for i := range buf {
			buf[i] = 0x5D
		}
		addr := wS.Base + sExts[0].DPA
		for r := 0; r < 200; r++ {
			if err := rpS.WriteBurst(addr, buf); err != nil {
				steadyErr = err
				return
			}
			if err := rpS.ReadBurst(addr, got); err != nil {
				steadyErr = err
				return
			}
			if !bytes.Equal(buf, got) {
				steadyErr = &PoisonError{Device: "steady", DPA: sExts[0].DPA}
				return
			}
		}
	}()
	var churnErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for r := 0; r < 30; r++ {
			if _, err := m.Grant("churny", 128*units.KiB); err != nil {
				churnErr = err
				return
			}
			var exts []ExtentInfo
			for _, ev := range churny.Events() {
				if ev.Type != EventAddCapacity {
					continue
				}
				if _, status := churny.Mailbox().Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ev.Extent.DCD(), true)); status != cxl.MboxSuccess {
					churnErr = &PoisonError{Device: "accept failed", DPA: ev.Extent.DPA}
					return
				}
				exts = append(exts, ev.Extent)
			}
			for _, e := range exts {
				// Touch the extent; it may be revoked mid-flight by
				// the reclaim below, so errors are expected — only
				// data-path hangs or races would fail the test.
				_ = rpC.WriteBurst(wC.Base+e.DPA, buf)
			}
			if _, err := m.ForceReclaim("churny"); err != nil {
				churnErr = err
				return
			}
			var acks []ExtentInfo
			for _, ev := range churny.Events() {
				if ev.Type == EventForcedReclaim {
					acks = append(acks, ev.Extent)
				}
			}
			for _, e := range acks {
				if _, status := churny.Mailbox().Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(e.DCD())); status != cxl.MboxSuccess {
					churnErr = &PoisonError{Device: "ack failed", DPA: e.DPA}
					return
				}
			}
		}
	}()
	wg.Wait()
	if steadyErr != nil {
		t.Fatalf("steady tenant: %v", steadyErr)
	}
	if churnErr != nil {
		t.Fatalf("churny tenant: %v", churnErr)
	}
}
