package fabric

import (
	"fmt"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/units"
)

// EvacuatePool drains every extent backed by the named pool onto the
// remaining healthy pools while tenant traffic continues, then leaves
// the source pool unhealthy (no new grants) and empty. Tenants notice
// nothing: extents are DPA-identified, so re-homing the pool bytes is
// invisible to the DCD protocol.
//
// Per active extent the move is: freeze writes (readers keep hitting
// the now-stable source copy, writers spin in WriteAt until thawed),
// publish, drain in-flight accesses, copy source → destination, re-home
// the mapping, publish, drain again, then scrub and free the source
// bytes — the same publish→drain→scrub→free ordering dropLocked uses,
// so a straggling access through the old table can never read another
// tenant's future bytes or write into freed capacity.
//
// Returns the number of extents moved. On error (typically no healthy
// capacity left) extents already moved stay moved and the pool stays
// unhealthy; add a spare pool and call again to finish.
func (m *Manager) EvacuatePool(name string) (moved int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.poolLocked(name)
	if src == nil {
		return 0, fmt.Errorf("fabric: no pool %s", name)
	}
	src.healthy = false
	for _, tname := range m.order {
		t := m.tenants[tname]
		for _, snap := range sortedLocked(t) {
			live := t.extents[snap.Tag]
			if live == nil || live.Pool != name {
				continue
			}
			switch live.State {
			case ExtentRevoked:
				// Pool bytes were already scrubbed and released by the
				// forced reclaim; only the tenant-space tombstone is
				// left, and it references no media.
				continue
			case ExtentPending:
				// Never mapped, nothing to copy: re-reserve on a healthy
				// pool and release the source bytes.
				dst, pl, ok := m.allocExactLocked(live.Size, t.memTypes)
				if !ok {
					return moved, fmt.Errorf("fabric: evacuating %s: no healthy pool holds %v", name, units.Size(live.Size))
				}
				if err := src.mld.ReleaseExtent(cxl.Extent{Base: live.PoolBase, Size: live.Size}); err != nil {
					return moved, err
				}
				live.PoolBase, live.Pool = dst.Base, pl.name
				moved++
			case ExtentActive:
				dst, pl, ok := m.allocExactLocked(live.Size, t.memTypes)
				if !ok {
					return moved, fmt.Errorf("fabric: evacuating %s: no healthy pool holds %v", name, units.Size(live.Size))
				}
				if err := m.migrateLocked(t, live, src, pl, dst); err != nil {
					return moved, err
				}
				moved++
			}
		}
	}
	return moved, nil
}

// allocExactLocked reserves exactly size contiguous bytes from the
// first healthy pool that can provide them (a migration target must
// hold the whole extent — splitting would change the tenant's extent
// list mid-flight) and whose media kind the tenant's mask allows.
func (m *Manager) allocExactLocked(size uint64, mask MemTypes) (cxl.Extent, *pool, bool) {
	for _, p := range m.pools {
		if !p.healthy || !mask.Allows(p.mld.Media().Profile().Kind) {
			continue
		}
		ext, ok := p.mld.AllocExtentAny(units.Size(size))
		if !ok {
			continue
		}
		if ext.Size < size {
			if err := p.mld.ReleaseExtent(ext); err != nil {
				panic(fmt.Sprintf("fabric: evacuate alloc rollback: %v", err))
			}
			continue
		}
		return ext, p, true
	}
	return cxl.Extent{}, nil, false
}

// migrateLocked moves one active extent's bytes from src to dst while
// the tenant keeps reading.
func (m *Manager) migrateLocked(t *Tenant, live *ExtentInfo, src, dstPool *pool, dst cxl.Extent) error {
	release := func(p *pool, e cxl.Extent) {
		if err := p.mld.ReleaseExtent(e); err != nil {
			panic(fmt.Sprintf("fabric: evacuate release: %v", err))
		}
	}
	live.frozen = true
	publishTableLocked(t)
	t.dev.drain()

	srcMedia, dstMedia := src.mld.Media(), dstPool.mld.Media()
	buf := make([]byte, min(live.Size, 1<<20))
	for off := uint64(0); off < live.Size; {
		n := uint64(len(buf))
		if off+n > live.Size {
			n = live.Size - off
		}
		if err := srcMedia.ReadAt(buf[:n], int64(live.PoolBase+off)); err != nil {
			live.frozen = false
			publishTableLocked(t)
			release(dstPool, dst)
			return err
		}
		if err := dstMedia.WriteAt(buf[:n], int64(dst.Base+off)); err != nil {
			live.frozen = false
			publishTableLocked(t)
			release(dstPool, dst)
			return err
		}
		off += n
	}

	oldBase := live.PoolBase
	live.PoolBase, live.Pool = dst.Base, dstPool.name
	live.frozen = false
	publishTableLocked(t)
	t.dev.drain()
	if err := ras.ZeroFill(srcMedia, oldBase, live.Size); err != nil {
		return err
	}
	release(src, cxl.Extent{Base: oldBase, Size: live.Size})
	m.evacuatedExtents.Add(1)
	m.evacuatedBytes.Add(int64(live.Size))
	return nil
}
