package fabric

import (
	"cxlpmem/internal/telemetry"
)

// RegisterMetrics exposes the fabric manager's control-plane state
// through the registry: cumulative grant/release/reclaim/evacuation
// counters (atomics, no lock on the gather path) plus point-in-time
// pool and per-tenant capacity gauges (which take the manager mutex —
// exposition is a cold path).
func (m *Manager) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		e.Counter("fabric_granted_extents_total", "", m.grantedExtents.Load())
		e.Counter("fabric_granted_bytes_total", "", m.grantedBytes.Load())
		e.Counter("fabric_released_extents_total", "", m.releasedExtents.Load())
		e.Counter("fabric_reclaimed_extents_total", "", m.reclaimedExtents.Load())
		e.Counter("fabric_evacuated_extents_total", "", m.evacuatedExtents.Load())
		e.Counter("fabric_evacuated_bytes_total", "", m.evacuatedBytes.Load())
		e.Gauge("fabric_pool_remaining_bytes", "", float64(m.Remaining()))
		for _, name := range m.Pools() {
			healthy := 0.0
			if m.PoolHealthy(name) {
				healthy = 1
			}
			e.Gauge("fabric_pool_healthy", telemetry.Labels("pool", name), healthy)
		}
		for _, name := range m.Tenants() {
			t, ok := m.Tenant(name)
			if !ok {
				continue
			}
			labels := telemetry.Labels("tenant", name)
			e.Gauge("fabric_tenant_quota_bytes", labels, float64(t.Quota()))
			e.Gauge("fabric_tenant_active_bytes", labels, float64(t.Active()))
			st := t.Device().Stats()
			e.Counter("fabric_tenant_reads_total", labels, st.Reads.Load())
			e.Counter("fabric_tenant_writes_total", labels, st.Writes.Load())
			e.Counter("fabric_tenant_read_bytes_total", labels, st.BytesRead.Load())
			e.Counter("fabric_tenant_write_bytes_total", labels, st.BytesWrite.Load())
		}
	})
}
