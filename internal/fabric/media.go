package fabric

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// tenantMedia is the media a tenant's DCD endpoint exposes: a fixed
// device-physical address space of quota bytes, sparsely backed by the
// extents the fabric manager has granted. Each active extent maps a
// tenant-DPA range onto a range of the pool (MLD) media; accesses to
// unmapped holes fail, accesses to revoked extents fail with poison.
//
// The mapping table is published as an immutable sorted slice through
// an atomic pointer: the data path (every CXL.mem line and burst the
// tenant's root port issues) walks it lock-free, while the manager
// swaps in a new table on every grant/release/reclaim — mid-flight
// accesses see either the old capacity layout or the new, never a torn
// mix. This is the same snapshot discipline the port and device layers
// use for their hot-path configuration.
type tenantMedia struct {
	name  string
	pool  memdev.Device // the MLD's backing media
	quota uint64
	table atomic.Pointer[[]mapping]
	stats memdev.Stats
	// inflight counts accesses between table load and completion; the
	// manager publishes a new table and then drains it before scrubbing
	// or re-granting pool bytes, so a write that resolved through the
	// old layout can never land on capacity that has left the tenant.
	inflight atomic.Int64
}

// mapping is one granted extent as the data path sees it.
type mapping struct {
	dpa      uint64        // tenant device address
	poolBase uint64        // address in the pool media
	size     uint64
	pool     memdev.Device // the pool backing this extent
	revoked  bool
	// frozen marks an extent mid-migration between pools: reads serve
	// the (stable) current copy, writes back off with errFrozen and
	// retry until the re-homed table is published.
	frozen bool
}

// errFrozen is the internal write-path sentinel for a frozen extent.
// Returning it immediately — instead of spinning inside access — lets
// the access release its inflight count, so the manager's drain during
// a migration cannot deadlock against a blocked writer.
var errFrozen = errors.New("fabric: extent frozen for migration")

// PoisonError reports an access to a revoked (forcibly reclaimed)
// extent: the device returns the CXL poison indication instead of data.
type PoisonError struct {
	Device string
	DPA    uint64
}

func (e *PoisonError) Error() string {
	return fmt.Sprintf("fabric: %s: DPA %#x poisoned (extent revoked)", e.Device, e.DPA)
}

// UnmappedError reports an access to a hole in the tenant's address
// space — no extent is granted there.
type UnmappedError struct {
	Device string
	DPA    uint64
}

func (e *UnmappedError) Error() string {
	return fmt.Sprintf("fabric: %s: DPA %#x not backed by a granted extent", e.Device, e.DPA)
}

func newTenantMedia(name string, pool memdev.Device, quota uint64) *tenantMedia {
	d := &tenantMedia{name: name, pool: pool, quota: quota}
	d.table.Store(&[]mapping{})
	return d
}

func (d *tenantMedia) Name() string            { return d.name }
func (d *tenantMedia) Capacity() units.Size    { return units.Size(d.quota) }
func (d *tenantMedia) Persistent() bool        { return d.pool.Persistent() }
func (d *tenantMedia) Profile() memdev.Profile { return d.pool.Profile() }
func (d *tenantMedia) Stats() *memdev.Stats    { return &d.stats }
func (d *tenantMedia) PowerCycle()             { d.pool.PowerCycle() }

// setTable publishes a new mapping table; the manager builds it sorted
// by DPA under its own lock.
func (d *tenantMedia) setTable(t []mapping) { d.table.Store(&t) }

// drain blocks until every access that may have loaded a previous
// mapping table has completed — a grace period. An access beginning
// after the drain loads the table published before it (the counter and
// pointer are both sequentially consistent atomics), so post-drain the
// retired extents are unreachable. Accesses never take the manager
// lock, so draining under it cannot deadlock; the wait is bounded by
// one media access.
func (d *tenantMedia) drain() {
	for d.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

// find returns the mapping containing dpa, or nil. The table is small
// (one entry per granted extent) and sorted; a linear walk beats a
// binary search at these sizes and stays allocation-free.
func (d *tenantMedia) find(t []mapping, dpa uint64) *mapping {
	for i := range t {
		if dpa < t[i].dpa {
			return nil
		}
		if dpa < t[i].dpa+t[i].size {
			return &t[i]
		}
	}
	return nil
}

// revokedAt reports whether dpa falls in a revoked extent — the
// per-line poison hook the manager installs on the tenant's endpoint.
func (d *tenantMedia) revokedAt(dpa uint64) bool {
	m := d.find(*d.table.Load(), dpa)
	return m != nil && m.revoked
}

// revokedIn reports whether any byte of [dpa, dpa+n) falls in a
// revoked extent — the span-granular companion consulted per burst.
func (d *tenantMedia) revokedIn(dpa, n uint64) bool {
	for _, m := range *d.table.Load() {
		if m.revoked && m.dpa < dpa+n && dpa < m.dpa+m.size {
			return true
		}
	}
	return false
}

// access walks the span across its covering extents, issuing one pool
// access per covered chunk. A span touching a hole or a revoked extent
// fails at that point; like any multi-extent transfer, chunks already
// moved stay moved (the CXL burst layer above validates poison for the
// whole burst up front, so bursts still fail whole).
func (d *tenantMedia) access(p []byte, off int64, write bool) error {
	if off < 0 || uint64(off)+uint64(len(p)) > d.quota {
		return &memdev.AddrError{Device: d.name, Off: off, Len: len(p), Cap: d.Capacity()}
	}
	d.inflight.Add(1)
	defer d.inflight.Add(-1)
	t := *d.table.Load()
	dpa := uint64(off)
	for len(p) > 0 {
		m := d.find(t, dpa)
		if m == nil {
			return &UnmappedError{Device: d.name, DPA: dpa}
		}
		if m.revoked {
			return &PoisonError{Device: d.name, DPA: dpa}
		}
		if write && m.frozen {
			return errFrozen
		}
		n := m.dpa + m.size - dpa
		if uint64(len(p)) < n {
			n = uint64(len(p))
		}
		pool := m.pool
		if pool == nil {
			pool = d.pool
		}
		poolOff := int64(m.poolBase + (dpa - m.dpa))
		var err error
		if write {
			err = pool.WriteAt(p[:n], poolOff)
		} else {
			err = pool.ReadAt(p[:n], poolOff)
		}
		if err != nil {
			return err
		}
		p = p[n:]
		dpa += n
	}
	return nil
}

func (d *tenantMedia) ReadAt(p []byte, off int64) error {
	if err := d.access(p, off, false); err != nil {
		return err
	}
	d.stats.Reads.Add(1)
	d.stats.BytesRead.Add(int64(len(p)))
	d.stats.TouchHeat(off, len(p))
	return nil
}

func (d *tenantMedia) WriteAt(p []byte, off int64) error {
	// A frozen extent (mid-migration) stalls the writer here, outside
	// the inflight window, and retries from the top: each attempt
	// reloads the table, so the write lands on the re-homed extent the
	// moment it is published.
	for {
		err := d.access(p, off, true)
		if err == nil {
			break
		}
		if errors.Is(err, errFrozen) {
			runtime.Gosched()
			continue
		}
		return err
	}
	d.stats.Writes.Add(1)
	d.stats.BytesWrite.Add(int64(len(p)))
	d.stats.TouchHeat(off, len(p))
	return nil
}

// Committed implements memdev.RangeLister over the granted, non-revoked
// extents — the footprint the RAS patrol scrubber walks for a tenant.
func (d *tenantMedia) Committed() []memdev.Range {
	t := *d.table.Load()
	var out []memdev.Range
	for _, m := range t {
		if m.revoked {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Base+out[n-1].Size == m.dpa {
			out[n-1].Size += m.size
		} else {
			out = append(out, memdev.Range{Base: m.dpa, Size: m.size})
		}
	}
	return out
}
