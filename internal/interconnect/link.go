// Package interconnect models the fabrics between cores and memory in the
// paper's two setups: the UPI link joining the two CPU sockets and the
// PCIe Gen5 x16 connection carrying CXL.mem traffic to the FPGA prototype
// (§2.2: "the R-Tile interfaces with a CPU host via a PCIe Gen5x16
// connection, delivering a theoretical bandwidth of up to 64GB/s").
//
// A Link carries a latency and a per-direction bandwidth cap; a Path is an
// ordered traversal of links whose latencies accumulate and whose
// narrowest cap bounds throughput. The analytic engine in internal/perf
// resolves contention when several flows share a link.
package interconnect

import (
	"fmt"

	"cxlpmem/internal/units"
)

// Kind classifies a link technology.
type Kind int

const (
	// KindUPI is Intel Ultra Path Interconnect between sockets.
	KindUPI Kind = iota
	// KindPCIe5 is PCIe Gen5 (32 GT/s per lane), the carrier of
	// CXL 1.1/2.0 (paper §1.3).
	KindPCIe5
	// KindPCIe6 is PCIe Gen6 (64 GT/s per lane), the carrier of
	// CXL 3.0 (paper §1.3) — used by the link-generation ablation.
	KindPCIe6
	// KindPCIe4 is PCIe Gen4 (16 GT/s per lane), the NVMe-SSD era
	// fabric of the paper's "Today" diagram (Figure 1).
	KindPCIe4
	// KindOnDie is the zero-cost path from a core to its own socket's
	// memory controller.
	KindOnDie
)

func (k Kind) String() string {
	switch k {
	case KindUPI:
		return "UPI"
	case KindPCIe5:
		return "PCIe5"
	case KindPCIe6:
		return "PCIe6"
	case KindPCIe4:
		return "PCIe4"
	case KindOnDie:
		return "on-die"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// gtPerLane returns the per-lane signalling rate in GT/s for a kind, or 0
// for kinds without a lane structure.
func (k Kind) gtPerLane() float64 {
	switch k {
	case KindPCIe4:
		return 16
	case KindPCIe5:
		return 32
	case KindPCIe6:
		return 64
	default:
		return 0
	}
}

// Link is a point-to-point fabric segment.
type Link struct {
	// Name identifies the link (e.g. "upi0", "pcie5x16-cxl").
	Name string
	// Kind of the link.
	Kind Kind
	// Lanes for PCIe kinds (16 for the paper's x16 slot).
	Lanes int
	// Latency added by one traversal of the link, one way.
	Latency units.Latency
	// Cap is the effective per-direction bandwidth available to
	// payload after encoding and protocol overhead. If zero it is
	// derived from Kind and Lanes via DefaultCap.
	Cap units.Bandwidth
	// Efficiency derates the raw lane bandwidth when Cap is derived
	// (protocol headers, flit framing). Zero means kind-specific
	// defaults.
	Efficiency float64
}

// Raw lane efficiency defaults. CXL.mem moves 64-byte lines inside 68-byte
// flits with slot headers; together with PCIe framing a sustained ~75% of
// raw is representative for streaming. UPI and on-die paths set Cap
// explicitly in the topology builders.
const (
	defaultPCIeEfficiency = 0.75
)

// EffectiveCap returns the per-direction payload bandwidth of the link.
func (l *Link) EffectiveCap() units.Bandwidth {
	if l.Cap > 0 {
		return l.Cap
	}
	gt := l.Kind.gtPerLane()
	if gt == 0 || l.Lanes <= 0 {
		return 0
	}
	eff := l.Efficiency
	if eff == 0 {
		eff = defaultPCIeEfficiency
	}
	// GT/s ~ Gb/s per lane for PCIe 5.0/6.0 (128b/130b and PAM4+FEC
	// encodings are close enough to 1b/1T for this model).
	raw := gt * float64(l.Lanes) / 8 // GB/s
	return units.GBps(raw * eff)
}

// RawPeak returns the theoretical per-direction bandwidth before protocol
// overhead (the "up to 64GB/s" figure the paper quotes for Gen5 x16).
func (l *Link) RawPeak() units.Bandwidth {
	gt := l.Kind.gtPerLane()
	if gt == 0 || l.Lanes <= 0 {
		return l.Cap
	}
	return units.GBps(gt * float64(l.Lanes) / 8)
}

func (l *Link) String() string {
	if l.Lanes > 0 {
		return fmt.Sprintf("%s(%s x%d, %s, cap %s)", l.Name, l.Kind, l.Lanes, l.Latency, l.EffectiveCap())
	}
	return fmt.Sprintf("%s(%s, %s, cap %s)", l.Name, l.Kind, l.Latency, l.EffectiveCap())
}

// Path is an ordered traversal of links from a core to a memory device.
// An empty path means socket-local access.
type Path struct {
	Links []*Link
}

// Latency returns the summed one-way latency of all links.
func (p Path) Latency() units.Latency {
	var total units.Latency
	for _, l := range p.Links {
		total += l.Latency
	}
	return total
}

// MinCap returns the narrowest effective cap along the path, or 0 for an
// empty path (no fabric constraint).
func (p Path) MinCap() units.Bandwidth {
	var minCap units.Bandwidth
	for i, l := range p.Links {
		c := l.EffectiveCap()
		if i == 0 || c < minCap {
			minCap = c
		}
	}
	return minCap
}

// Contains reports whether the path traverses the given link.
func (p Path) Contains(l *Link) bool {
	for _, x := range p.Links {
		if x == l {
			return true
		}
	}
	return false
}

func (p Path) String() string {
	if len(p.Links) == 0 {
		return "local"
	}
	s := ""
	for i, l := range p.Links {
		if i > 0 {
			s += " -> "
		}
		s += l.Name
	}
	return s
}

// NewUPI builds a cross-socket UPI link. The effective cap and latency
// default to values representative of the paper's hosts; a remote-socket
// STREAM run on Sapphire Rapids loses ~30% against local access (§4
// Class 1.b), which the combination of +110 ns and a ~17.5 GB/s sustained
// remote cap reproduces.
func NewUPI(name string, cap units.Bandwidth, latency units.Latency) *Link {
	if cap == 0 {
		cap = units.GBps(17.5)
	}
	if latency == 0 {
		latency = units.Nanoseconds(110)
	}
	return &Link{Name: name, Kind: KindUPI, Latency: latency, Cap: cap}
}

// NewPCIe builds a PCIe link of the given generation kind and width.
func NewPCIe(name string, kind Kind, lanes int, latency units.Latency) (*Link, error) {
	if kind.gtPerLane() == 0 {
		return nil, fmt.Errorf("interconnect: %s: kind %v is not a PCIe generation", name, kind)
	}
	if lanes <= 0 || lanes > 16 {
		return nil, fmt.Errorf("interconnect: %s: invalid lane count %d", name, lanes)
	}
	if latency == 0 {
		latency = units.Nanoseconds(120)
	}
	return &Link{Name: name, Kind: kind, Lanes: lanes, Latency: latency}, nil
}

// NewStriped builds the aggregate fabric of an n-way interleave set:
// n identical member links the host stripes granules across. Legs
// traverse in parallel, so the aggregate keeps one member's latency
// while the payload cap sums — the analytic model's view of what
// cxl.InterleaveSet does on the simulated wire.
func NewStriped(name string, n int, member *Link) (*Link, error) {
	if n < 1 {
		return nil, fmt.Errorf("interconnect: %s: invalid stripe width %d", name, n)
	}
	if member == nil {
		return nil, fmt.Errorf("interconnect: %s: nil member link", name)
	}
	return &Link{
		Name:    name,
		Kind:    member.Kind,
		Lanes:   member.Lanes * n,
		Latency: member.Latency,
		Cap:     units.Bandwidth(float64(member.EffectiveCap()) * float64(n)),
	}, nil
}
