package interconnect

import (
	"strings"
	"testing"

	"cxlpmem/internal/units"
)

func TestPCIe5x16RawPeak(t *testing.T) {
	l, err := NewPCIe("cxl", KindPCIe5, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper quotes "up to 64GB/s in each direction via a 16-lane
	// link" for CXL 1.1/2.0 over PCIe 5.0.
	if got := l.RawPeak().GBps(); got != 64 {
		t.Errorf("PCIe5 x16 raw peak = %v GB/s, want 64", got)
	}
	// Effective cap is derated by protocol efficiency.
	if got := l.EffectiveCap().GBps(); got != 48 {
		t.Errorf("PCIe5 x16 effective = %v GB/s, want 48", got)
	}
}

func TestPCIe6DoublesPCIe5(t *testing.T) {
	l5, err := NewPCIe("g5", KindPCIe5, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	l6, err := NewPCIe("g6", KindPCIe6, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// "CXL 3.0 utilizes PCIe 6.0, doubling the speed to 64 GT/s" (§1.3).
	if got, want := l6.RawPeak().GBps(), 2*l5.RawPeak().GBps(); got != want {
		t.Errorf("PCIe6 raw = %v, want %v", got, want)
	}
}

func TestExplicitCapOverrides(t *testing.T) {
	l := &Link{Name: "x", Kind: KindPCIe5, Lanes: 16, Cap: units.GBps(10)}
	if got := l.EffectiveCap().GBps(); got != 10 {
		t.Errorf("explicit cap = %v, want 10", got)
	}
}

func TestCustomEfficiency(t *testing.T) {
	l := &Link{Name: "x", Kind: KindPCIe5, Lanes: 16, Efficiency: 0.5}
	if got := l.EffectiveCap().GBps(); got != 32 {
		t.Errorf("eff=0.5 cap = %v, want 32", got)
	}
}

func TestUPIDefaults(t *testing.T) {
	l := NewUPI("upi0", 0, 0)
	if got := l.EffectiveCap().GBps(); got != 17.5 {
		t.Errorf("UPI default cap = %v, want 17.5", got)
	}
	if got := l.Latency.Ns(); got != 110 {
		t.Errorf("UPI default latency = %v, want 110", got)
	}
	custom := NewUPI("upi1", units.GBps(9.5), units.Nanoseconds(130))
	if custom.EffectiveCap().GBps() != 9.5 || custom.Latency.Ns() != 130 {
		t.Error("UPI custom parameters not honoured")
	}
}

func TestNewPCIeValidation(t *testing.T) {
	if _, err := NewPCIe("x", KindUPI, 16, 0); err == nil {
		t.Error("accepted UPI kind for PCIe constructor")
	}
	if _, err := NewPCIe("x", KindPCIe5, 0, 0); err == nil {
		t.Error("accepted 0 lanes")
	}
	if _, err := NewPCIe("x", KindPCIe5, 32, 0); err == nil {
		t.Error("accepted 32 lanes")
	}
}

func TestPathAccumulation(t *testing.T) {
	upi := NewUPI("upi0", units.GBps(17.5), units.Nanoseconds(110))
	pcie, err := NewPCIe("cxl", KindPCIe5, 16, units.Nanoseconds(120))
	if err != nil {
		t.Fatal(err)
	}
	p := Path{Links: []*Link{upi, pcie}}
	if got := p.Latency().Ns(); got != 230 {
		t.Errorf("path latency = %v, want 230", got)
	}
	// Narrowest link governs: UPI's 17.5 < PCIe5's 48.
	if got := p.MinCap().GBps(); got != 17.5 {
		t.Errorf("path min cap = %v, want 17.5", got)
	}
	if !p.Contains(upi) || !p.Contains(pcie) {
		t.Error("Contains false negative")
	}
	other := NewUPI("upi9", 0, 0)
	if p.Contains(other) {
		t.Error("Contains false positive")
	}
}

func TestEmptyPathIsLocal(t *testing.T) {
	var p Path
	if p.Latency() != 0 {
		t.Error("empty path latency != 0")
	}
	if p.MinCap() != 0 {
		t.Error("empty path cap != 0")
	}
	if p.String() != "local" {
		t.Errorf("empty path string = %q", p.String())
	}
}

func TestStringers(t *testing.T) {
	upi := NewUPI("upi0", 0, 0)
	if s := upi.String(); !strings.Contains(s, "upi0") || !strings.Contains(s, "UPI") {
		t.Errorf("link string = %q", s)
	}
	pcie, _ := NewPCIe("cxl", KindPCIe5, 16, 0)
	if s := pcie.String(); !strings.Contains(s, "x16") {
		t.Errorf("pcie string = %q", s)
	}
	p := Path{Links: []*Link{upi, pcie}}
	if s := p.String(); s != "upi0 -> cxl" {
		t.Errorf("path string = %q", s)
	}
	for _, k := range []Kind{KindUPI, KindPCIe4, KindPCIe5, KindPCIe6, KindOnDie, Kind(42)} {
		if k.String() == "" {
			t.Errorf("kind %d empty string", k)
		}
	}
}

func TestOnDieHasNoLaneBandwidth(t *testing.T) {
	l := &Link{Name: "die", Kind: KindOnDie}
	if l.EffectiveCap() != 0 {
		t.Error("on-die link without explicit cap should have 0 cap")
	}
	if l.RawPeak() != 0 {
		t.Error("on-die raw peak should be 0 without explicit cap")
	}
}
