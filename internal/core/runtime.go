// Package core is the paper's primary contribution as a library: a
// runtime that lets CXL-attached memory serve as persistent memory for
// disaggregated HPC, exposing both PMem operating modes over any memory
// node of a machine (Table 1):
//
//   - App-Direct: persistent object pools (internal/pmem) on DAX-style
//     mounts, where the CXL mount routes every persist through the
//     CXL.mem protocol to the battery-backed FPGA prototype.
//   - Memory Mode: cache-coherent NUMA expansion with numactl-style
//     policies (internal/numa) and accounted capacity.
//
// The runtime assembles a topology, enumerates the CXL hierarchy,
// mounts /mnt/pmem0../mnt/pmemN (one per NUMA node, as in Figures 2 and
// 9), and hands out pools, allocations and benchmarks against them.
package core

import (
	"fmt"
	"sync"

	"cxlpmem/internal/fpga"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/pmem"
	"cxlpmem/internal/pmemfs"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// Runtime is an assembled machine with its persistence plumbing.
type Runtime struct {
	// Machine is the hardware topology.
	Machine *topology.Machine
	// Card is the CXL prototype (nil on machines without one).
	Card *fpga.Prototype
	// Engine is the bandwidth model over Machine.
	Engine *perf.Engine
	// FS is the /mnt registry.
	FS *pmemfs.Registry

	mu     sync.Mutex
	mounts map[topology.NodeID]*pmemfs.Mount
	// usage tracks Memory-Mode allocations per node.
	usage map[topology.NodeID]int64
}

// NewSetup1 assembles the paper's Setup #1: dual SPR + CXL prototype.
func NewSetup1(opts topology.Setup1Options) (*Runtime, error) {
	m, card, err := topology.Setup1(opts)
	if err != nil {
		return nil, err
	}
	return assemble(m, card)
}

// NewSetup2 assembles the paper's Setup #2: dual Xeon Gold, DDR4 only.
func NewSetup2() (*Runtime, error) {
	m, err := topology.Setup2()
	if err != nil {
		return nil, err
	}
	return assemble(m, nil)
}

// NewDCPMMReference assembles the Optane comparison platform.
func NewDCPMMReference() (*Runtime, error) {
	m, err := topology.DCPMMReference()
	if err != nil {
		return nil, err
	}
	return assemble(m, nil)
}

func assemble(m *topology.Machine, card *fpga.Prototype) (*Runtime, error) {
	rt := &Runtime{
		Machine: m,
		Card:    card,
		Engine:  perf.New(m),
		FS:      pmemfs.NewRegistry(),
		mounts:  make(map[topology.NodeID]*pmemfs.Mount),
		usage:   make(map[topology.NodeID]int64),
	}
	for _, n := range m.Nodes {
		name := fmt.Sprintf("/mnt/pmem%d", n.ID)
		var acc pmemfs.Accessor
		var size int64
		switch n.Kind {
		case topology.NodeCXL:
			// The DAX path to CXL memory goes through the node's
			// MemIO data path: every pool access is CXL.mem traffic,
			// and an interleaved node routes through the striped path,
			// fanning bulk transfers across its legs. Line-aligned
			// interiors move as multi-line CXL.mem bursts, so pool view
			// loads, persists and checkpoint chunk flushes cost
			// O(bytes) on the wire instead of O(lines × codec round
			// trips).
			acc = n.DataPath()
			size = int64(n.Window.Size)
		default:
			acc = n.Device
			size = n.Device.Capacity().Bytes()
		}
		mnt, err := pmemfs.NewMount(name, acc, size, n.Persistent())
		if err != nil {
			return nil, err
		}
		if err := rt.FS.Add(mnt); err != nil {
			return nil, err
		}
		rt.mounts[n.ID] = mnt
	}
	return rt, nil
}

// MountFor returns the /mnt/pmemN mount of a node.
func (rt *Runtime) MountFor(id topology.NodeID) (*pmemfs.Mount, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	mnt, ok := rt.mounts[id]
	if !ok {
		return nil, fmt.Errorf("core: no mount for node %d", id)
	}
	return mnt, nil
}

// poolRegion adapts a pmemfs file to pmem.Region, forwarding power
// cycles to the node's media so SimulateCrash behaves correctly per
// mount (DRAM-emulated pmem dies, battery-backed CXL survives).
type poolRegion struct {
	*pmemfs.File
	dev memdev.Device
}

func (r *poolRegion) PowerCycle() { r.dev.PowerCycle() }

// CreatePool creates a pmemobj pool file on a node's mount — the
// pmemobj_create(path, layout, size, mode) call of Listing 2.
func (rt *Runtime) CreatePool(id topology.NodeID, name, layout string, size int64) (*pmem.Pool, error) {
	mnt, err := rt.MountFor(id)
	if err != nil {
		return nil, err
	}
	node, err := rt.Machine.Node(id)
	if err != nil {
		return nil, err
	}
	f, err := mnt.Create(name, size)
	if err != nil {
		return nil, err
	}
	return pmem.Create(&poolRegion{File: f, dev: node.Device}, layout)
}

// OpenPool reopens an existing pool file, running recovery — the
// pmemobj_open path.
func (rt *Runtime) OpenPool(id topology.NodeID, name, layout string) (*pmem.Pool, error) {
	mnt, err := rt.MountFor(id)
	if err != nil {
		return nil, err
	}
	node, err := rt.Machine.Node(id)
	if err != nil {
		return nil, err
	}
	f, err := mnt.Open(name)
	if err != nil {
		return nil, err
	}
	return pmem.Open(&poolRegion{File: f, dev: node.Device}, layout)
}

// Allocation is a Memory-Mode allocation bound to a node.
type Allocation struct {
	// Node the pages landed on.
	Node *topology.Node
	// Data is the host view (volatile, as in Memory Mode); nil for
	// accounting-only reservations made with Reserve.
	Data []byte

	size int64
	rt   *Runtime
}

// Size returns the reserved byte count.
func (a *Allocation) Size() int64 { return a.size }

// Free returns the capacity to the node.
func (a *Allocation) Free() {
	if a.rt == nil {
		return
	}
	a.rt.mu.Lock()
	a.rt.usage[a.Node.ID] -= a.size
	a.rt.mu.Unlock()
	a.rt = nil
	a.Data = nil
}

// Reserve performs the placement half of a Memory-Mode allocation: the
// node is chosen by the numactl-style policy against remaining
// capacity, and the size is accounted to it. Data stays nil — large
// reservations (capacity planning, benchmark sweeps) need no host
// memory. The reserved size is tracked for Free.
func (rt *Runtime) Reserve(policy *numa.Policy, size int64) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: non-positive allocation %d", size)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	node, err := policy.Pick(rt.Machine, func(n *topology.Node) bool {
		return rt.usage[n.ID]+size <= n.Device.Capacity().Bytes()
	})
	if err != nil {
		return nil, err
	}
	rt.usage[node.ID] += size
	return &Allocation{Node: node, size: size, rt: rt}, nil
}

// AllocMemoryMode reserves and materialises a Memory-Mode allocation.
func (rt *Runtime) AllocMemoryMode(policy *numa.Policy, size int64) (*Allocation, error) {
	a, err := rt.Reserve(policy, size)
	if err != nil {
		return nil, err
	}
	a.Data = make([]byte, size)
	return a, nil
}

// NodeUsage reports the accounted Memory-Mode bytes on a node.
func (rt *Runtime) NodeUsage(id topology.NodeID) int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.usage[id]
}

// CXLNode returns the machine's CXL node, if any.
func (rt *Runtime) CXLNode() (*topology.Node, bool) {
	for _, n := range rt.Machine.Nodes {
		if n.Kind == topology.NodeCXL {
			return n, true
		}
	}
	return nil, false
}

// LocalBandwidth is the modelled full-socket Memory-Mode rate against
// the machine's node 0 — the "main memory bandwidth" reference used by
// the mode property table.
func (rt *Runtime) LocalBandwidth() (units.Bandwidth, error) {
	cores := rt.Machine.CoresOn(0)
	r, err := rt.Engine.StreamBandwidth(cores, 0, perf.Mix{ReadFrac: 0.5}, perf.MemoryMode)
	if err != nil {
		return 0, err
	}
	return r.Total, nil
}

// CXLBandwidth is the modelled full-socket rate against the CXL node in
// the given mode.
func (rt *Runtime) CXLBandwidth(mode perf.AccessMode) (units.Bandwidth, error) {
	n, ok := rt.CXLNode()
	if !ok {
		return 0, fmt.Errorf("core: machine has no CXL node")
	}
	cores := rt.Machine.CoresOn(0)
	r, err := rt.Engine.StreamBandwidth(cores, n.ID, perf.Mix{ReadFrac: 0.5}, mode)
	if err != nil {
		return 0, err
	}
	return r.Total, nil
}
