package core

import "cxlpmem/internal/fpga"

// fpgaNoBattery returns prototype options with the battery removed.
func fpgaNoBattery() fpga.Options {
	return fpga.Options{NoBattery: true}
}
