package core

import (
	"strings"
	"testing"

	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

func setup1(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewSetup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRuntimeMounts(t *testing.T) {
	rt := setup1(t)
	mounts := rt.FS.Mounts()
	want := []string{"/mnt/pmem0", "/mnt/pmem1", "/mnt/pmem2"}
	if len(mounts) != 3 {
		t.Fatalf("mounts = %v", mounts)
	}
	for i, w := range want {
		if mounts[i] != w {
			t.Errorf("mount %d = %q, want %q", i, mounts[i], w)
		}
	}
	m2, err := rt.MountFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Persistent() {
		t.Error("/mnt/pmem2 (CXL) must be persistent")
	}
	m0, err := rt.MountFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Persistent() {
		t.Error("/mnt/pmem0 (DRAM-emulated) must be volatile")
	}
	if _, err := rt.MountFor(9); err == nil {
		t.Error("missing mount accepted")
	}
}

func TestPoolOnCXLRoutesThroughProtocol(t *testing.T) {
	rt := setup1(t)
	pool, err := rt.CreatePool(2, "pool.obj", "test-layout", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	before := rt.Card.Stats().Writes.Load() + rt.Card.Stats().PartialWrites.Load()
	oid, err := pool.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := pool.View(oid, 4096)
	copy(v, "cxl persistent data")
	if err := pool.Persist(oid, 4096); err != nil {
		t.Fatal(err)
	}
	after := rt.Card.Stats().Writes.Load() + rt.Card.Stats().PartialWrites.Load()
	if after <= before {
		t.Error("persist did not generate CXL.mem writes at the endpoint")
	}
}

func TestCXLPoolSurvivesCrashDRAMPoolDoesNot(t *testing.T) {
	// The paper's practical point (§1.4): the CXL module is battery-
	// backed and therefore a real PMem; the socket-DRAM "pmem" is an
	// emulation that cannot survive power loss.
	rt := setup1(t)

	cxlPool, err := rt.CreatePool(2, "p.obj", "layout", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := cxlPool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := cxlPool.View(oid, 64)
	copy(v, "diagnostics")
	if err := cxlPool.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}

	dramPool, err := rt.CreatePool(0, "p.obj", "layout", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	oid2, err := dramPool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := dramPool.View(oid2, 64)
	copy(v2, "diagnostics")
	if err := dramPool.Persist(oid2, 64); err != nil {
		t.Fatal(err)
	}

	cxlPool.SimulateCrash()
	dramPool.SimulateCrash()

	re, err := rt.OpenPool(2, "p.obj", "layout")
	if err != nil {
		t.Fatalf("CXL pool did not survive: %v", err)
	}
	got, _ := re.View(oid, 64)
	if string(got[:11]) != "diagnostics" {
		t.Error("CXL pool lost data")
	}
	if _, err := rt.OpenPool(0, "p.obj", "layout"); err == nil {
		t.Error("DRAM-emulated pool survived power loss")
	}
}

func TestStreamPmemOnCXLEndToEnd(t *testing.T) {
	// Full paper pipeline: pool on /mnt/pmem2, STREAM-PMem arrays,
	// kernels, validation, persistence — all through the CXL stack.
	rt := setup1(t)
	pool, err := rt.CreatePool(2, "stream.obj", stream.Layout, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := stream.AllocPmemArrays(pool, 10000)
	if err != nil {
		t.Fatal(err)
	}
	cores, err := numa.PlaceOnSocket(rt.Machine, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := &stream.Bench{Engine: rt.Engine, Cores: cores, Node: 2, Mode: perf.AppDirect}
	results, err := b.Run(arr, stream.Config{NTimes: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatal("missing results")
	}
	if rt.Card.Stats().Writes.Load() == 0 {
		t.Error("no CXL traffic for a CXL-target run")
	}
}

func TestMemoryModeAllocationAccounting(t *testing.T) {
	rt := setup1(t)
	pol := numa.NewMembind(2)
	a, err := rt.AllocMemoryMode(pol, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Node.ID != 2 || len(a.Data) != 1<<20 {
		t.Errorf("allocation = node %d, %d bytes", a.Node.ID, len(a.Data))
	}
	if got := rt.NodeUsage(2); got != 1<<20 {
		t.Errorf("usage = %d", got)
	}
	a.Free()
	if got := rt.NodeUsage(2); got != 0 {
		t.Errorf("usage after free = %d", got)
	}
	a.Free() // idempotent
	if _, err := rt.AllocMemoryMode(pol, 0); err == nil {
		t.Error("zero-size accepted")
	}
	// Membind refuses when the node is exhausted (reservation only,
	// no host memory materialised).
	if _, err := rt.Reserve(pol, 32<<40); err == nil {
		t.Error("overcommit accepted under membind")
	}
	// Preferred falls back to another node instead.
	huge := int64(20) << 30 // larger than the 16GiB CXL HDM
	b, err := rt.Reserve(numa.NewPreferred(2), huge)
	if err != nil {
		t.Fatalf("preferred fallback failed: %v", err)
	}
	if b.Node.ID == 2 {
		t.Error("preferred landed on a node without capacity")
	}
	if b.Size() != huge || b.Data != nil {
		t.Error("reservation shape wrong")
	}
	b.Free()
	if got := rt.NodeUsage(b.Node.ID); got != 0 {
		t.Errorf("usage after reservation free = %d", got)
	}
}

func TestCXLNodeLookup(t *testing.T) {
	rt := setup1(t)
	n, ok := rt.CXLNode()
	if !ok || n.ID != 2 {
		t.Errorf("CXLNode = %v, %v", n, ok)
	}
	rt2, err := NewSetup2()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt2.CXLNode(); ok {
		t.Error("Setup2 reported a CXL node")
	}
	if _, err := rt2.CXLBandwidth(perf.MemoryMode); err == nil {
		t.Error("CXLBandwidth on Setup2 accepted")
	}
}

func TestBandwidthHelpers(t *testing.T) {
	rt := setup1(t)
	local, err := rt.LocalBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	cxlMM, err := rt.CXLBandwidth(perf.MemoryMode)
	if err != nil {
		t.Fatal(err)
	}
	cxlAD, err := rt.CXLBandwidth(perf.AppDirect)
	if err != nil {
		t.Fatal(err)
	}
	if !(local > cxlMM && cxlMM > cxlAD) {
		t.Errorf("ordering: local %v > cxl-mm %v > cxl-ad %v violated", local, cxlMM, cxlAD)
	}
	_ = units.GBps // anchor
}

func TestTable1FromRuntime(t *testing.T) {
	rt := setup1(t)
	rows, err := rt.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (paper Table 1)", len(rows))
	}
	if rows[0].Property != "Volatility" {
		t.Error("first row should be volatility")
	}
	if !strings.Contains(rows[0].AppDirect, "Non-volatile") {
		t.Errorf("battery-backed card should be non-volatile in App-Direct: %q", rows[0].AppDirect)
	}
	if !strings.Contains(rows[4].MemoryMode, "below main memory bandwidth") {
		t.Errorf("performance row = %q", rows[4].MemoryMode)
	}
	txt := FormatTable1(rows)
	if !strings.Contains(txt, "Property") || !strings.Contains(txt, "App-Direct") {
		t.Error("FormatTable1 output malformed")
	}
	// A no-battery card flips the volatility cell.
	rtNB, err := NewSetup1(topology.Setup1Options{FPGA: fpgaNoBattery()})
	if err != nil {
		t.Fatal(err)
	}
	rowsNB, err := rtNB.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rowsNB[0].AppDirect, "VOLATILE") {
		t.Errorf("no-battery volatility row = %q", rowsNB[0].AppDirect)
	}
	// The DCPMM reference machine also renders Table 1.
	rtD, err := NewDCPMMReference()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtD.Table1(); err != nil {
		t.Errorf("DCPMM Table1: %v", err)
	}
	// Setup2 has nothing persistent to describe.
	rt2, err := NewSetup2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Table1(); err == nil {
		t.Error("Setup2 Table1 should fail")
	}
}

func TestTable2FromRuntime(t *testing.T) {
	rt := setup1(t)
	rows, err := rt.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].Aspect != "Bandwidth & Data Transfer" {
		t.Error("first row")
	}
	if !strings.Contains(rows[0].CXL, "GB/s") || !strings.Contains(rows[0].NVRAM, "6.6") {
		t.Errorf("bandwidth row: %+v", rows[0])
	}
	txt := FormatTable2(rows)
	if !strings.Contains(txt, "NVRAM") {
		t.Error("FormatTable2 output malformed")
	}
	// Without a CXL node the CXL cell is generic.
	rt2, err := NewSetup2()
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := rt2.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rows2[0].CXL, "prototype") {
		t.Error("Setup2 should not claim prototype numbers")
	}
}
