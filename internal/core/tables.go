package core

import (
	"fmt"
	"strings"

	"cxlpmem/internal/perf"
	"cxlpmem/internal/topology"
)

// The paper's two qualitative tables, emitted from the runtime's actual
// state rather than hard-coded prose where a fact is checkable: the
// volatility column comes from the device's persistence domain, the
// capacity and performance columns from the assembled topology and the
// bandwidth model.

// ModeProperty is one row of Table 1 ("Properties of PMem modules,
// either as a memory extension (Memory Mode) or as a direct access PMem
// (App-Direct)").
type ModeProperty struct {
	Property   string
	MemoryMode string
	AppDirect  string
}

// Table1 renders the PMem mode property matrix for this runtime's CXL
// (or PMem) node.
func (rt *Runtime) Table1() ([]ModeProperty, error) {
	node, ok := rt.CXLNode()
	if !ok {
		// Fall back to a pmem node (DCPMM reference machine).
		for _, n := range rt.Machine.Nodes {
			if n.Kind == topology.NodePMem {
				node, ok = n, true
				break
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("core: no persistent-capable node to describe")
	}
	local, err := rt.Machine.Node(0)
	if err != nil {
		return nil, err
	}
	mmVol := "Volatile in memory extension mode"
	adVol := "Non-volatile in direct access mode"
	if !node.Persistent() {
		adVol = "VOLATILE — media has no battery backing; App-Direct unsafe"
	}

	mmBW, err := rt.Engine.StreamBandwidth(rt.Machine.CoresOn(0), node.ID, perf.Mix{ReadFrac: 0.5}, perf.MemoryMode)
	if err != nil {
		return nil, err
	}
	localBW, err := rt.LocalBandwidth()
	if err != nil {
		return nil, err
	}
	factor := float64(localBW) / float64(mmBW.Total)

	capRatio := float64(node.Device.Capacity()) / float64(local.Device.Capacity())
	capNote := "Lower than the local DIMM volume in this prototype"
	if capRatio > 1 {
		capNote = fmt.Sprintf("%.1fx the local DIMM volume", capRatio)
	}

	return []ModeProperty{
		{"Volatility", mmVol, adVol},
		{"Access", "Cache-coherent memory expansion", "Transactional byte-addressable object store"},
		{"Capacity", capNote, "Lower than storage volume"},
		{"Cost", "Cheaper than the main memory (DDR4 device vs DDR5 DIMMs)", "More expensive than storage"},
		{"Performance",
			fmt.Sprintf("%.1fx below main memory bandwidth (%.1f vs %.1f GB/s modelled)",
				factor, mmBW.Total.GBps(), localBW.GBps()),
			"High bandwidth compared to storage"},
	}, nil
}

// AspectRow is one row of Table 2 ("General comparison between common
// aspects of CXL memory and NVRAM for disaggregated HPC").
type AspectRow struct {
	Aspect string
	CXL    string
	NVRAM  string
}

// Table2 renders the CXL-vs-NVRAM aspect matrix. The bandwidth line is
// substantiated with the model's numbers for this machine.
func (rt *Runtime) Table2() ([]AspectRow, error) {
	rows := []AspectRow{
		{"Memory Coherency",
			"Memory-coherent links keep data consistent across tiers",
			"Needs extra coherency mechanisms beyond local RAM"},
		{"Heterogeneous Integration",
			"DDR4/DDR5/accelerator memory behind one standard",
			"Capacity extension only; integration needs care"},
		{"Pooling & Sharing",
			"Switch-level pooling with dynamic capacity (CXL 2.0)",
			"Limited sharing flexibility"},
		{"Standardization",
			"Open industry standard (CXL consortium)",
			"Vendor-specific solutions"},
		{"Scalability",
			"Lanes and switches scale with the fabric",
			"Bounded by DIMM slots and RAM/NVRAM trade-off"},
	}
	bwRow := AspectRow{
		Aspect: "Bandwidth & Data Transfer",
		NVRAM:  "Interface-limited (published DCPMM: 6.6 GB/s read, 2.3 GB/s write)",
	}
	if n, ok := rt.CXLNode(); ok {
		r, err := rt.Engine.StreamBandwidth(rt.Machine.CoresOn(0), n.ID, perf.Mix{ReadFrac: 0.5}, perf.MemoryMode)
		if err != nil {
			return nil, err
		}
		link := "?"
		if rt.Card != nil {
			link = rt.Card.TheoreticalLinkPeak().String()
		}
		bwRow.CXL = fmt.Sprintf("%.1f GB/s sustained on this prototype; link raw %s", r.Total.GBps(), link)
	} else {
		bwRow.CXL = "Significantly higher bandwidth between processors and memory devices"
	}
	return append([]AspectRow{bwRow}, rows...), nil
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(rows []ModeProperty) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %-55s | %s\n", "Property", "Memory Mode", "App-Direct")
	b.WriteString(strings.Repeat("-", 130) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %-55s | %s\n", r.Property, r.MemoryMode, r.AppDirect)
	}
	return b.String()
}

// FormatTable2 renders Table 2 as aligned text.
func FormatTable2(rows []AspectRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s | %-60s | %s\n", "Aspect", "CXL Memory", "NVRAM")
	b.WriteString(strings.Repeat("-", 150) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s | %-60s | %s\n", r.Aspect, r.CXL, r.NVRAM)
	}
	return b.String()
}
