package fpga

import (
	"bytes"
	"strings"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func paperCard(t *testing.T) *Prototype {
	t.Helper()
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPaperConfiguration(t *testing.T) {
	p := paperCard(t)
	opts := p.Options()
	if opts.Channels != 2 {
		t.Errorf("channels = %d, want 2", opts.Channels)
	}
	if opts.Rate != 1333 {
		t.Errorf("rate = %v, want 1333", opts.Rate)
	}
	if got := p.HDM().Capacity(); got != 16*units.GiB {
		t.Errorf("capacity = %v, want 16GiB (2x8GB)", got)
	}
	if !p.HDM().Persistent() {
		t.Error("paper card must be battery-backed")
	}
	if p.DeviceType() != cxl.Type3 {
		t.Errorf("device type = %v, want Type3", p.DeviceType())
	}
	if got := p.Media().Profile().Kind; got != memdev.KindCXLHDM {
		t.Errorf("media kind = %v, want CXL-HDM", got)
	}
}

func TestLinkIsGen5x16With64GBpsRaw(t *testing.T) {
	p := paperCard(t)
	// §2.2: "PCIe Gen5x16 connection, delivering a theoretical
	// bandwidth of up to 64GB/s".
	if got := p.TheoreticalLinkPeak().GBps(); got != 64 {
		t.Errorf("raw link peak = %v GB/s, want 64", got)
	}
	// Effective payload bandwidth is well below raw but far above the
	// DDR4-1333 media, so the media is the bottleneck as in the paper.
	eff := p.EffectiveCap().GBps()
	if eff <= 30 || eff >= 64 {
		t.Errorf("effective cap = %v GB/s, want in (30, 64)", eff)
	}
	media := p.Media().Profile().ReadPeak.GBps()
	if media >= eff {
		t.Errorf("media peak %v should be below link cap %v (media-bound prototype)", media, eff)
	}
}

func TestDVSECAdvertisesMem(t *testing.T) {
	p := paperCard(t)
	info, ok := p.Config().FindCXLDVSEC()
	if !ok {
		t.Fatal("no DVSEC")
	}
	if info.Caps&cxl.CapMem == 0 || info.Caps&cxl.CapIO == 0 {
		t.Errorf("caps = %v, want io+mem", info.Caps)
	}
	if info.HDMSize != uint64(16*units.GiB) {
		t.Errorf("hdm size = %d", info.HDMSize)
	}
	if p.Config().VendorID() != VendorIntel {
		t.Errorf("vendor = %#x", p.Config().VendorID())
	}
}

func TestEndToEndThroughRootPort(t *testing.T) {
	p := paperCard(t)
	rp := cxl.NewRootPort("rp0", p.Link())
	if err := rp.Attach(p); err != nil {
		t.Fatalf("link training failed: %v", err)
	}
	h, err := cxl.Enumerate(0, rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Windows) != 1 {
		t.Fatalf("windows = %d", len(h.Windows))
	}
	base := int64(h.Windows[0].Base)
	payload := []byte("persistent HPC diagnostics")
	if err := rp.WriteAt(payload, base); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	if err := rp.ReadAt(out, base); err != nil {
		t.Fatal(err)
	}
	if string(out) != string(payload) {
		t.Errorf("round trip = %q", out)
	}
}

func TestBatteryBackedSurvivesPowerCycle(t *testing.T) {
	p := paperCard(t)
	if err := p.HDM().WriteAt([]byte{0xCA, 0xFE}, 4096); err != nil {
		t.Fatal(err)
	}
	p.HDM().PowerCycle()
	out := make([]byte, 2)
	if err := p.HDM().ReadAt(out, 4096); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xCA || out[1] != 0xFE {
		t.Error("battery-backed HDM lost data across power cycle")
	}
}

func TestNoBatteryLosesData(t *testing.T) {
	p, err := New(Options{NoBattery: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.HDM().Persistent() {
		t.Fatal("NoBattery card reports persistent")
	}
	if err := p.HDM().WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	p.HDM().PowerCycle()
	out := make([]byte, 1)
	if err := p.HDM().ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Error("volatile HDM retained data")
	}
}

func TestAblationOptions(t *testing.T) {
	// §2.2 upgrade paths: DDR4-3200, DDR5-5600, 4 channels, Gen6.
	cases := []struct {
		opts        Options
		wantPeakMin float64 // GB/s media peak lower bound
	}{
		{Options{Rate: 3200}, 35},
		{Options{Rate: 5600, Channels: 1}, 30},
		{Options{Channels: 4}, 30},
		{Options{LinkKind: interconnect.KindPCIe6}, 10},
	}
	for i, c := range cases {
		p, err := New(c.opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := p.Media().Profile().ReadPeak.GBps(); got < c.wantPeakMin {
			t.Errorf("case %d: media peak = %v GB/s, want >= %v", i, got, c.wantPeakMin)
		}
	}
	p6, err := New(Options{LinkKind: interconnect.KindPCIe6})
	if err != nil {
		t.Fatal(err)
	}
	if got := p6.TheoreticalLinkPeak().GBps(); got != 128 {
		t.Errorf("Gen6 x16 raw = %v, want 128", got)
	}
	if _, err := New(Options{Channels: 5}); err == nil {
		t.Error("accepted 5 channels")
	}
	if _, err := New(Options{Channels: -1}); err == nil {
		t.Error("accepted negative channels")
	}
}

func TestUserStreamingInterface(t *testing.T) {
	p := paperCard(t)
	if v, err := p.ExecIO(CmdIdent); err != nil || v != IdentSignature {
		t.Errorf("CmdIdent = %#x, %v", v, err)
	}
	if v, err := p.ExecIO(CmdChannelCount); err != nil || v != 2 {
		t.Errorf("CmdChannelCount = %d, %v", v, err)
	}
	if v, err := p.ExecIO(CmdBatteryStatus); err != nil || v != 1 {
		t.Errorf("CmdBatteryStatus = %d, %v", v, err)
	}
	if _, err := p.ExecIO(CmdNop); err != nil {
		t.Errorf("CmdNop: %v", err)
	}
	if _, err := p.ExecIO(0xFFFF); err == nil {
		t.Error("unknown command accepted")
	}
	// The response lands in the CSR as well (CXL.io register file).
	v, err := p.Config().Read32(CSRStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v&StatusError == 0 {
		t.Error("status register should carry the error bit after a bad command")
	}
	// Battery off reports 0.
	nb, err := New(Options{NoBattery: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := nb.ExecIO(CmdBatteryStatus); err != nil || v != 0 {
		t.Errorf("no-battery CmdBatteryStatus = %d, %v", v, err)
	}
}

func TestString(t *testing.T) {
	p := paperCard(t)
	s := p.String()
	if !strings.Contains(s, "Agilex7") || !strings.Contains(s, "DDR4-1333") {
		t.Errorf("String = %q", s)
	}
}

// TestPrototypeServicesBursts checks the card is a native BurstHandler:
// a multi-line burst lands as one HDM access against the card DRAM and
// round-trips bit-exact through a root port.
func TestPrototypeServicesBursts(t *testing.T) {
	card, err := New(Options{ChannelCapacity: 8 * units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(card).(cxl.BurstHandler); !ok {
		t.Fatal("prototype does not implement cxl.BurstHandler")
	}
	rp := cxl.NewRootPort("rp0", card.Link())
	if err := rp.Attach(card); err != nil {
		t.Fatal(err)
	}
	h, err := cxl.Enumerate(0, rp)
	if err != nil {
		t.Fatal(err)
	}
	base := h.Windows[0].Base
	in := make([]byte, 8*cxl.LineSize)
	for i := range in {
		in[i] = byte(i * 5)
	}
	if err := rp.WriteBurst(base, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := rp.ReadBurst(base, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("burst round trip through the card mismatched")
	}
	if card.Stats().WriteBursts.Load() != 1 || card.Stats().ReadBursts.Load() != 1 {
		t.Error("card did not service the bursts natively")
	}
	if e := card.BurstEfficiency(); e <= 0.9 {
		t.Errorf("burst efficiency = %v, want > 0.9", e)
	}
}
