// Package fpga models the paper's CXL prototype: an Intel Agilex-7
// I-Series FPGA card embodying a CXL 1.1/2.0 compliant Type-3 endpoint
// (§2.2, Figures 2 and 4). The architecture pairs the R-Tile Hard IP,
// which manages CXL link functions over a PCIe Gen5 x16 connection, with
// Soft IP in the FPGA main fabric implementing the transaction layers:
// CXL.mem requests become host-managed device memory (HDM) accesses
// against two onboard DDR4 modules (8 GB each at 1333 MHz), and CXL.io
// requests are forwarded to control/status registers, with a User
// Streaming Interface for custom CXL.io features.
//
// The card sits outside the node and is battery-backed (§1.4), which is
// what lets the paper treat its memory as persistent.
package fpga

import (
	"fmt"
	"sync"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// Paper configuration constants (§2.2).
const (
	// PaperChannels: "two onboard DDR4 memory modules".
	PaperChannels = 2
	// PaperChannelCapacity: "each boasting a capacity of 8GB".
	PaperChannelCapacity = 8 * units.GiB
	// PaperRate: "operating at a clock frequency of 1333 MHz".
	PaperRate units.TransferRate = 1333
	// VendorIntel is the PCI vendor ID in the prototype's config space.
	VendorIntel = 0x8086
	// DeviceIDPrototype is an arbitrary stable device ID for the card.
	DeviceIDPrototype = 0x0CC5
)

// Options parameterises the prototype. The zero value reproduces the
// paper's card; the other fields implement §2.2's "potential avenues for
// enhancing bandwidth": a higher-speed FPGA supporting DDR4-3200 or
// DDR5-5600, and scaling from one channel to four.
type Options struct {
	// Name of the card; default "agilex7-cxl".
	Name string
	// Channels of device DRAM; default PaperChannels.
	Channels int
	// Rate of the device DRAM; default PaperRate.
	Rate units.TransferRate
	// ChannelCapacity per module; default PaperChannelCapacity.
	ChannelCapacity units.Size
	// LinkKind of the host connection; default PCIe Gen5 (CXL 1.1/2.0).
	// KindPCIe6 models a CXL 3.0 link for the ablation.
	LinkKind interconnect.Kind
	// Lanes of the link; default 16.
	Lanes int
	// NoBattery drops the battery backing, making the HDM volatile
	// (for tests that demonstrate why the battery matters).
	NoBattery bool
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "agilex7-cxl"
	}
	if o.Channels == 0 {
		o.Channels = PaperChannels
	}
	if o.Rate == 0 {
		o.Rate = PaperRate
	}
	if o.ChannelCapacity == 0 {
		o.ChannelCapacity = PaperChannelCapacity
	}
	if o.LinkKind != interconnect.KindPCIe5 && o.LinkKind != interconnect.KindPCIe6 && o.LinkKind != interconnect.KindPCIe4 {
		o.LinkKind = interconnect.KindPCIe5
	}
	if o.Lanes == 0 {
		o.Lanes = 16
	}
	return o
}

// Prototype is the FPGA card: a CXL Type-3 endpoint plus the card-level
// machinery around it.
type Prototype struct {
	*cxl.Type3Device
	opts    Options
	link    *interconnect.Link
	hdm     *memdev.DRAM
	csr     csrFile
	mailbox *cxl.Mailbox
}

// New builds the card. The returned Prototype is a cxl.Endpoint ready to
// attach to a root port.
func New(opts Options) (*Prototype, error) {
	opts = opts.withDefaults()
	if opts.Channels < 1 || opts.Channels > 4 {
		return nil, fmt.Errorf("fpga: %s: channel count %d outside the card's 1..4 range", opts.Name, opts.Channels)
	}
	hdm, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               opts.Name + "-hdm",
		Rate:               opts.Rate,
		Channels:           opts.Channels,
		CapacityPerChannel: opts.ChannelCapacity,
		// Far-memory media latency: DDR4 behind the on-card
		// controller; the CXL fabric latency lives on the link.
		IdleLatency:   units.Nanoseconds(105),
		BatteryBacked: !opts.NoBattery,
	})
	if err != nil {
		return nil, fmt.Errorf("fpga: %s: %w", opts.Name, err)
	}
	// memdev defaults the Kind to DRAM; expose the CXL-HDM role via the
	// endpoint wrapper so the perf engine can tell them apart.
	ep, err := cxl.NewType3(opts.Name, VendorIntel, DeviceIDPrototype, &hdmMedia{DRAM: hdm})
	if err != nil {
		return nil, err
	}
	link, err := interconnect.NewPCIe(opts.Name+"-link", opts.LinkKind, opts.Lanes, units.Nanoseconds(0))
	if err != nil {
		return nil, err
	}
	// CXL.mem protocol framing derates the raw PCIe bandwidth; the flit
	// accounting in internal/cxl gives the payload efficiency.
	link.Efficiency = cxl.ProtocolEfficiency() + 0.28 // header flits amortise over streams
	// One traversal of R-Tile + PCIe + soft-IP transaction layer: the
	// prototype's far-memory penalty over local DRAM access.
	link.Latency = units.Nanoseconds(240)
	p := &Prototype{Type3Device: ep, opts: opts, link: link, hdm: hdm}
	p.mailbox, err = cxl.NewMailbox(ep, "agilex7-sim-1.1")
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Mailbox exposes the device command interface (identify, health,
// poison management, sanitize).
func (p *Prototype) Mailbox() *cxl.Mailbox { return p.mailbox }

// hdmMedia wraps the card DRAM reporting KindCXLHDM.
type hdmMedia struct {
	*memdev.DRAM
}

func (m *hdmMedia) Profile() memdev.Profile {
	p := m.DRAM.Profile()
	p.Kind = memdev.KindCXLHDM
	return p
}

// Options returns the effective configuration.
func (p *Prototype) Options() Options { return p.opts }

// Link returns the card's host connection (for topology wiring).
func (p *Prototype) Link() *interconnect.Link { return p.link }

// HDM returns the card's DRAM (test and battery checks).
func (p *Prototype) HDM() *memdev.DRAM { return p.hdm }

// TheoreticalLinkPeak is the headline figure the paper quotes for the
// host connection ("theoretical bandwidth of up to 64GB/s" for Gen5x16).
func (p *Prototype) TheoreticalLinkPeak() units.Bandwidth { return p.link.RawPeak() }

// EffectiveCap is the post-protocol payload bandwidth of the link.
func (p *Prototype) EffectiveCap() units.Bandwidth { return p.link.EffectiveCap() }

// BurstEfficiency is the payload fraction of wire traffic when the host
// streams maximal CXL.mem bursts at the card: one header flit and one
// completion amortised over MaxBurstLines all-data flits (§2.2's point
// that the observed bandwidth ceiling "does not reflect an intrinsic
// limitation of the CXL standard" — the framing allows ~94% payload).
func (p *Prototype) BurstEfficiency() float64 {
	return cxl.BurstProtocolEfficiency(cxl.MaxBurstLines)
}

func (p *Prototype) String() string {
	return fmt.Sprintf("%s: Agilex7 CXL Type3, %dx%s DDR4-%d, %s link",
		p.opts.Name, p.opts.Channels, p.opts.ChannelCapacity, p.opts.Rate, p.opts.LinkKind)
}

// --- User Streaming Interface -------------------------------------------
//
// §2.2: "a noteworthy augmentation is the User Streaming Interface,
// offering a conduit for custom CXL.io features". We model it as a small
// CSR mailbox reachable through the endpoint's config space mirror:
// software writes a command register and reads a response register.

// CSR addresses in the vendor region of the config space.
const (
	CSRCommand  = 0x400
	CSRResponse = 0x404
	CSRStatus   = 0x408
)

// Streaming commands.
const (
	// CmdNop does nothing and completes immediately.
	CmdNop uint32 = 0
	// CmdIdent returns a card signature in the response register.
	CmdIdent uint32 = 1
	// CmdChannelCount returns the populated DDR channel count.
	CmdChannelCount uint32 = 2
	// CmdBatteryStatus returns 1 if the HDM is battery-backed.
	CmdBatteryStatus uint32 = 3
)

// IdentSignature is returned by CmdIdent.
const IdentSignature uint32 = 0xC0DE_0CC5

// Status register bits.
const (
	StatusReady uint32 = 1 << 0
	StatusError uint32 = 1 << 1
)

type csrFile struct {
	mu sync.Mutex
}

// ExecIO runs one user-streaming command through the CXL.io path and
// returns the response register value.
func (p *Prototype) ExecIO(cmd uint32) (uint32, error) {
	p.csr.mu.Lock()
	defer p.csr.mu.Unlock()
	cs := p.Config()
	if err := cs.Write32(CSRCommand, cmd); err != nil {
		return 0, err
	}
	var resp, status uint32
	switch cmd {
	case CmdNop:
		resp, status = 0, StatusReady
	case CmdIdent:
		resp, status = IdentSignature, StatusReady
	case CmdChannelCount:
		resp, status = uint32(p.opts.Channels), StatusReady
	case CmdBatteryStatus:
		if p.hdm.Persistent() {
			resp = 1
		}
		status = StatusReady
	default:
		resp, status = 0, StatusError
	}
	if err := cs.Write32(CSRResponse, resp); err != nil {
		return 0, err
	}
	if err := cs.Write32(CSRStatus, status); err != nil {
		return 0, err
	}
	if status&StatusError != 0 {
		return 0, fmt.Errorf("fpga: %s: unknown streaming command %#x", p.opts.Name, cmd)
	}
	return resp, nil
}
