package checkpoint

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"cxlpmem/internal/pmem"
)

// memRegion is a persistent in-memory pmem.Region.
type memRegion struct {
	mu   sync.Mutex
	data []byte
}

func (r *memRegion) ReadAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("out of range")
	}
	copy(p, r.data[off:])
	return nil
}

func (r *memRegion) WriteAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("out of range")
	}
	copy(r.data[off:], p)
	return nil
}

func (r *memRegion) Size() int64      { return int64(len(r.data)) }
func (r *memRegion) Persistent() bool { return true }

func newManager(t *testing.T, slots int) (*Manager, *pmem.Pool, *memRegion) {
	t.Helper()
	r := &memRegion{data: make([]byte, 8<<20)}
	pool, err := pmem.Create(r, Layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(pool, slots)
	if err != nil {
		t.Fatal(err)
	}
	return m, pool, r
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i%251)
	}
	return out
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _, _ := newManager(t, 4)
	data := pattern(10_000, 1)
	if err := m.Save(1, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	ids, err := m.List()
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Errorf("List = %v, %v", ids, err)
	}
}

func TestIncrementalDedup(t *testing.T) {
	m, pool, _ := newManager(t, 4)
	data := pattern(16*ChunkSize, 2)
	if err := m.Save(1, 0, data); err != nil {
		t.Fatal(err)
	}
	allocsAfterFull := pool.Stats().Allocs.Load()
	// Change exactly one chunk and save incrementally.
	data2 := append([]byte(nil), data...)
	data2[5*ChunkSize+10] ^= 0xFF
	if err := m.Save(2, 1, data2); err != nil {
		t.Fatal(err)
	}
	if got := m.LastReused(); got != 15 {
		t.Errorf("reused %d chunks, want 15", got)
	}
	// Only two allocations: one new chunk + one descriptor.
	if delta := pool.Stats().Allocs.Load() - allocsAfterFull; delta != 2 {
		t.Errorf("incremental save allocated %d objects, want 2", delta)
	}
	// Both snapshots load correctly.
	g1, err := m.Load(1)
	if err != nil || !bytes.Equal(g1, data) {
		t.Error("base snapshot corrupted by incremental save")
	}
	g2, err := m.Load(2)
	if err != nil || !bytes.Equal(g2, data2) {
		t.Error("incremental snapshot wrong")
	}
}

func TestDeleteKeepsSharedChunks(t *testing.T) {
	m, _, _ := newManager(t, 4)
	data := pattern(8*ChunkSize, 3)
	if err := m.Save(1, 0, data); err != nil {
		t.Fatal(err)
	}
	data2 := append([]byte(nil), data...)
	data2[0] ^= 1
	if err := m.Save(2, 1, data2); err != nil {
		t.Fatal(err)
	}
	// Deleting the base must not break the incremental snapshot that
	// shares its chunks.
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(2)
	if err != nil || !bytes.Equal(got, data2) {
		t.Errorf("shared chunks freed under live snapshot: %v", err)
	}
	if err := m.Delete(2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(2); err == nil {
		t.Error("deleted snapshot loads")
	}
	if err := m.Delete(2); err == nil {
		t.Error("double delete accepted")
	}
}

func TestSlotExhaustionAndValidation(t *testing.T) {
	m, _, _ := newManager(t, 2)
	if err := m.Save(1, 0, pattern(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(2, 0, pattern(100, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(3, 0, pattern(100, 3)); err == nil {
		t.Error("save past slot capacity accepted")
	}
	if err := m.Save(1, 0, pattern(100, 1)); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := m.Save(0, 0, pattern(100, 1)); err == nil {
		t.Error("id 0 accepted")
	}
	if err := m.Save(9, 0, nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	if err := m.Save(9, 7, pattern(100, 1)); err == nil {
		t.Error("missing base accepted")
	}
	if _, err := m.Load(99); err == nil {
		t.Error("missing snapshot loads")
	}
	if m.Slots() != 2 {
		t.Error("Slots")
	}
}

func TestLatest(t *testing.T) {
	m, _, _ := newManager(t, 4)
	if _, _, err := m.Latest(); err == nil {
		t.Error("Latest on empty directory accepted")
	}
	_ = m.Save(3, 0, pattern(64, 3))
	_ = m.Save(7, 0, pattern(64, 7))
	_ = m.Save(5, 0, pattern(64, 5))
	id, data, err := m.Latest()
	if err != nil || id != 7 {
		t.Fatalf("Latest = %d, %v", id, err)
	}
	if !bytes.Equal(data, pattern(64, 7)) {
		t.Error("Latest data wrong")
	}
}

func TestSurvivesCrashAndReopen(t *testing.T) {
	m, pool, region := newManager(t, 4)
	data := pattern(3*ChunkSize+17, 9)
	if err := m.Save(1, 0, data); err != nil {
		t.Fatal(err)
	}
	pool.SimulateCrash()

	pool2, err := pmem.Open(region, Layout)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Slots() != 4 {
		t.Errorf("slots after reopen = %d", m2.Slots())
	}
	got, err := m2.Load(1)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("snapshot lost across crash: %v", err)
	}
	// New + same slots also reattaches; different slot count refuses.
	if _, err := New(pool2, 4); err != nil {
		t.Errorf("New reattach: %v", err)
	}
	if _, err := New(pool2, 8); err == nil {
		t.Error("New with mismatched slots accepted")
	}
}

func TestOpenOnForeignPoolFails(t *testing.T) {
	r := &memRegion{data: make([]byte, 4<<20)}
	pool, err := pmem.Create(r, "other-layout")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pool); err == nil {
		t.Error("Open on pool without directory accepted")
	}
	if _, err := New(pool, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := New(pool, MaxSlots+1); err == nil {
		t.Error("oversized slots accepted")
	}
}

func TestCorruptChunkDetected(t *testing.T) {
	m, pool, _ := newManager(t, 4)
	data := pattern(2*ChunkSize, 4)
	if err := m.Save(1, 0, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt a chunk in place through the descriptor.
	refs, _, err := m.loadDescriptor(1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pool.View(pmem.OID{PoolID: pool.PoolID(), Off: refs[0].off}, 8)
	if err != nil {
		t.Fatal(err)
	}
	v[0] ^= 0xFF
	if _, err := m.Load(1); err == nil {
		t.Error("corrupt chunk passed CRC")
	}
}
