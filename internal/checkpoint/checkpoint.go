// Package checkpoint implements the HPC use case the paper motivates
// for PMem and positions CXL memory to inherit (§1.2): application
// diagnostics and checkpoint/restart (C/R) on a persistent, byte-
// addressable pool. Snapshots are chunked, content-deduplicated against
// the previous snapshot (incremental checkpointing), CRC-protected, and
// published atomically through a pmem transaction — a torn checkpoint
// is never visible after recovery.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"cxlpmem/internal/pmem"
)

// ChunkSize is the dedup granule.
const ChunkSize = 4096

// Layout is the pool layout name for checkpoint pools.
const Layout = "checkpoint-v1"

// directory layout in the root object:
//
//	0:8    magic
//	8:16   slot count (u64)
//	16:    slots, each 24 bytes: {id u64, descOff u64, size u64}
//
// A slot with descOff == 0 is empty. descOff points to a descriptor
// object: [nChunks u64] then per chunk {off u64, crc u32, pad u32}.
const (
	dirMagic   uint64 = 0xC4EC_9012_0001_0001
	slotSize          = 24
	dirHeader         = 16
	descHeader        = 8
	descEntry         = 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MaxSlots is the fixed directory capacity: the root object always has
// room for 64 snapshot slots, so reattaching needs no size negotiation.
const MaxSlots = 64

// Manager owns a checkpoint directory inside a pool.
type Manager struct {
	pool  *pmem.Pool
	root  pmem.OID
	slots int
	// lastReused counts chunks deduplicated by the most recent Save.
	lastReused int
}

const dirRootSize = uint64(dirHeader + MaxSlots*slotSize)

// New initialises a fresh checkpoint directory with the given usable
// slot capacity (at most MaxSlots), or reattaches when one exists with
// the same capacity.
func New(pool *pmem.Pool, slots int) (*Manager, error) {
	if slots <= 0 || slots > MaxSlots {
		return nil, fmt.Errorf("checkpoint: slot count %d outside 1..%d", slots, MaxSlots)
	}
	root, err := pool.Root(dirRootSize)
	if err != nil {
		return nil, err
	}
	b, err := pool.View(root, dirRootSize)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(b[0:]) == dirMagic {
		if got := int(binary.LittleEndian.Uint64(b[8:])); got != slots {
			return nil, fmt.Errorf("checkpoint: directory has %d slots, requested %d", got, slots)
		}
		return &Manager{pool: pool, root: root, slots: slots}, nil
	}
	// Fresh directory: publish transactionally.
	err = pool.Update(root, 0, dirRootSize, func(v []byte) error {
		for i := range v {
			v[i] = 0
		}
		binary.LittleEndian.PutUint64(v[0:], dirMagic)
		binary.LittleEndian.PutUint64(v[8:], uint64(slots))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Manager{pool: pool, root: root, slots: slots}, nil
}

// Open reattaches to an existing directory, recovering its capacity
// from the on-media header.
func Open(pool *pmem.Pool) (*Manager, error) {
	root, err := pool.Root(dirRootSize)
	if err != nil {
		return nil, err
	}
	magic, err := pool.GetUint64(root, 0)
	if err != nil {
		return nil, err
	}
	if magic != dirMagic {
		return nil, fmt.Errorf("checkpoint: pool has no checkpoint directory")
	}
	stored, err := pool.GetUint64(root, 8)
	if err != nil {
		return nil, err
	}
	if stored == 0 || stored > MaxSlots {
		return nil, fmt.Errorf("checkpoint: directory header corrupt (slots=%d)", stored)
	}
	return &Manager{pool: pool, root: root, slots: int(stored)}, nil
}

// slotView returns the 24-byte slot record.
func (m *Manager) slot(i int) (id, descOff, size uint64, err error) {
	b, err := m.pool.View(m.root, dirRootSize)
	if err != nil {
		return 0, 0, 0, err
	}
	off := dirHeader + i*slotSize
	return binary.LittleEndian.Uint64(b[off:]),
		binary.LittleEndian.Uint64(b[off+8:]),
		binary.LittleEndian.Uint64(b[off+16:]), nil
}

// findSlot returns the slot index holding id, or -1.
func (m *Manager) findSlot(id uint64) (int, error) {
	for i := 0; i < m.slots; i++ {
		sid, desc, _, err := m.slot(i)
		if err != nil {
			return -1, err
		}
		if desc != 0 && sid == id {
			return i, nil
		}
	}
	return -1, nil
}

// freeSlot returns an empty slot index, or -1.
func (m *Manager) freeSlot() (int, error) {
	for i := 0; i < m.slots; i++ {
		_, desc, _, err := m.slot(i)
		if err != nil {
			return -1, err
		}
		if desc == 0 {
			return i, nil
		}
	}
	return -1, nil
}

// Save writes a snapshot under id. Chunks identical (by CRC and
// content offset) to the previous snapshot prev are reused rather than
// rewritten; pass prev = 0 for a full checkpoint. The snapshot becomes
// visible atomically; a crash mid-save leaves the directory untouched.
func (m *Manager) Save(id uint64, prev uint64, data []byte) error {
	if id == 0 {
		return fmt.Errorf("checkpoint: id 0 is reserved")
	}
	if len(data) == 0 {
		return fmt.Errorf("checkpoint: empty snapshot")
	}
	if existing, err := m.findSlot(id); err != nil {
		return err
	} else if existing >= 0 {
		return fmt.Errorf("checkpoint: id %d already saved", id)
	}
	slot, err := m.freeSlot()
	if err != nil {
		return err
	}
	if slot < 0 {
		return fmt.Errorf("checkpoint: all %d slots full; delete one first", m.slots)
	}

	// Previous descriptor for dedup.
	var prevChunks []chunkRef
	if prev != 0 {
		if prevChunks, _, err = m.loadDescriptor(prev); err != nil {
			return fmt.Errorf("checkpoint: base snapshot %d: %w", prev, err)
		}
	}

	nChunks := (len(data) + ChunkSize - 1) / ChunkSize
	refs := make([]chunkRef, nChunks)
	reused := 0
	for c := 0; c < nChunks; c++ {
		lo := c * ChunkSize
		hi := lo + ChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		crc := crc32.Checksum(data[lo:hi], crcTable)
		if c < len(prevChunks) && prevChunks[c].crc == crc {
			// Verify content equality, not just CRC, before reuse.
			pb, err := m.pool.View(pmem.OID{PoolID: m.pool.PoolID(), Off: prevChunks[c].off}, uint64(hi-lo))
			if err == nil && bytes.Equal(pb, data[lo:hi]) {
				refs[c] = prevChunks[c]
				reused++
				continue
			}
		}
		oid, err := m.pool.Alloc(uint64(hi - lo))
		if err != nil {
			return err
		}
		v, err := m.pool.View(oid, uint64(hi-lo))
		if err != nil {
			return err
		}
		copy(v, data[lo:hi])
		if err := m.pool.Persist(oid, uint64(hi-lo)); err != nil {
			return err
		}
		refs[c] = chunkRef{off: oid.Off, crc: crc}
	}
	m.pool.Drain()
	m.lastReused = reused

	// Descriptor object.
	descSize := uint64(descHeader + nChunks*descEntry)
	desc, err := m.pool.Alloc(descSize)
	if err != nil {
		return err
	}
	db, err := m.pool.View(desc, descSize)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(db[0:], uint64(nChunks))
	for c, r := range refs {
		e := descHeader + c*descEntry
		binary.LittleEndian.PutUint64(db[e:], r.off)
		binary.LittleEndian.PutUint32(db[e+8:], r.crc)
	}
	if err := m.pool.Persist(desc, descSize); err != nil {
		return err
	}
	m.pool.Drain()

	// Atomic publish: one transactional slot write.
	slotOff := uint64(dirHeader + slot*slotSize)
	return m.pool.Update(m.root, slotOff, slotSize, func(b []byte) error {
		binary.LittleEndian.PutUint64(b[0:], id)
		binary.LittleEndian.PutUint64(b[8:], desc.Off)
		binary.LittleEndian.PutUint64(b[16:], uint64(len(data)))
		return nil
	})
}

type chunkRef struct {
	off uint64
	crc uint32
}

func (m *Manager) loadDescriptor(id uint64) ([]chunkRef, uint64, error) {
	slot, err := m.findSlot(id)
	if err != nil {
		return nil, 0, err
	}
	if slot < 0 {
		return nil, 0, fmt.Errorf("checkpoint: no snapshot %d", id)
	}
	_, descOff, size, err := m.slot(slot)
	if err != nil {
		return nil, 0, err
	}
	desc := pmem.OID{PoolID: m.pool.PoolID(), Off: descOff}
	nb, err := m.pool.View(desc, descHeader)
	if err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint64(nb)
	db, err := m.pool.View(desc, descHeader+n*descEntry)
	if err != nil {
		return nil, 0, err
	}
	refs := make([]chunkRef, n)
	for c := range refs {
		e := descHeader + c*descEntry
		refs[c] = chunkRef{
			off: binary.LittleEndian.Uint64(db[e:]),
			crc: binary.LittleEndian.Uint32(db[e+8:]),
		}
	}
	return refs, size, nil
}

// Load reads snapshot id, verifying every chunk CRC.
func (m *Manager) Load(id uint64) ([]byte, error) {
	refs, size, err := m.loadDescriptor(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	for c, r := range refs {
		lo := c * ChunkSize
		hi := lo + ChunkSize
		if hi > int(size) {
			hi = int(size)
		}
		v, err := m.pool.View(pmem.OID{PoolID: m.pool.PoolID(), Off: r.off}, uint64(hi-lo))
		if err != nil {
			return nil, err
		}
		if crc32.Checksum(v, crcTable) != r.crc {
			return nil, fmt.Errorf("checkpoint: snapshot %d chunk %d corrupt", id, c)
		}
		copy(out[lo:hi], v)
	}
	return out, nil
}

// List returns the saved snapshot IDs in slot order.
func (m *Manager) List() ([]uint64, error) {
	var out []uint64
	for i := 0; i < m.slots; i++ {
		id, desc, _, err := m.slot(i)
		if err != nil {
			return nil, err
		}
		if desc != 0 {
			out = append(out, id)
		}
	}
	return out, nil
}

// Latest returns the highest saved ID and its data.
func (m *Manager) Latest() (uint64, []byte, error) {
	ids, err := m.List()
	if err != nil {
		return 0, nil, err
	}
	var best uint64
	for _, id := range ids {
		if id > best {
			best = id
		}
	}
	if best == 0 {
		return 0, nil, fmt.Errorf("checkpoint: no snapshots")
	}
	data, err := m.Load(best)
	return best, data, err
}

// Delete removes a snapshot's directory entry. Chunk storage shared
// with other snapshots stays allocated; exclusively owned chunks are
// freed.
func (m *Manager) Delete(id uint64) error {
	slot, err := m.findSlot(id)
	if err != nil {
		return err
	}
	if slot < 0 {
		return fmt.Errorf("checkpoint: no snapshot %d", id)
	}
	refs, _, err := m.loadDescriptor(id)
	if err != nil {
		return err
	}
	_, descOff, _, err := m.slot(slot)
	if err != nil {
		return err
	}
	// Collect chunks referenced by other snapshots.
	shared := map[uint64]bool{}
	ids, err := m.List()
	if err != nil {
		return err
	}
	for _, other := range ids {
		if other == id {
			continue
		}
		oRefs, _, err := m.loadDescriptor(other)
		if err != nil {
			return err
		}
		for _, r := range oRefs {
			shared[r.off] = true
		}
	}
	// Unpublish first (atomic), then reclaim.
	slotOff := uint64(dirHeader + slot*slotSize)
	err = m.pool.Update(m.root, slotOff, slotSize, func(b []byte) error {
		for i := range b {
			b[i] = 0
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, r := range refs {
		if !shared[r.off] {
			if err := m.pool.Free(pmem.OID{PoolID: m.pool.PoolID(), Off: r.off}); err != nil {
				return err
			}
		}
	}
	return m.pool.Free(pmem.OID{PoolID: m.pool.PoolID(), Off: descOff})
}

// Slots returns the directory capacity.
func (m *Manager) Slots() int { return m.slots }

// LastReused reports how many chunks the most recent Save deduplicated
// against its base snapshot.
func (m *Manager) LastReused() int { return m.lastReused }
