// Package units provides the physical quantities used throughout the
// simulator: byte sizes, bandwidths, latencies and transfer rates.
//
// All quantities are strongly typed so that a bandwidth can never be
// accidentally added to a latency, and all carry String methods producing
// the same unit conventions the paper uses (GB/s in decimal gigabytes,
// latencies in nanoseconds, DIMM speeds in MT/s).
package units

import (
	"fmt"
	"time"
)

// Size is a byte count.
type Size int64

// Common sizes. The paper (and STREAM) use decimal MB/GB for bandwidth but
// binary capacities for DIMMs; we keep both.
const (
	Byte Size = 1
	KiB  Size = 1 << 10
	MiB  Size = 1 << 20
	GiB  Size = 1 << 30
	TiB  Size = 1 << 40

	KB Size = 1e3
	MB Size = 1e6
	GB Size = 1e9
)

// CacheLine is the transfer granule of every memory device and link model:
// a 64-byte line, as on the paper's Sapphire Rapids and Xeon Gold hosts.
const CacheLine Size = 64

// Bytes returns the size as an int64.
func (s Size) Bytes() int64 { return int64(s) }

// String formats the size with a binary suffix for capacities.
func (s Size) String() string {
	switch {
	case s >= TiB && s%TiB == 0:
		return fmt.Sprintf("%dTiB", s/TiB)
	case s >= GiB && s%GiB == 0:
		return fmt.Sprintf("%dGiB", s/GiB)
	case s >= MiB && s%MiB == 0:
		return fmt.Sprintf("%dMiB", s/MiB)
	case s >= KiB && s%KiB == 0:
		return fmt.Sprintf("%dKiB", s/KiB)
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// GBps constructs a bandwidth from decimal gigabytes per second, the unit
// STREAM reports ("Best Rate MB/s" scaled by 1000).
func GBps(v float64) Bandwidth { return Bandwidth(v * 1e9) }

// MBps constructs a bandwidth from decimal megabytes per second.
func MBps(v float64) Bandwidth { return Bandwidth(v * 1e6) }

// GBps reports the bandwidth in decimal gigabytes per second.
func (b Bandwidth) GBps() float64 { return float64(b) / 1e9 }

// MBps reports the bandwidth in decimal megabytes per second.
func (b Bandwidth) MBps() float64 { return float64(b) / 1e6 }

// String formats the bandwidth the way the paper's figures label their
// y-axes.
func (b Bandwidth) String() string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB/s", b.GBps())
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB/s", b.MBps())
	default:
		return fmt.Sprintf("%.0f B/s", float64(b))
	}
}

// Latency is a one-way access latency.
type Latency time.Duration

// Nanoseconds constructs a latency from nanoseconds.
func Nanoseconds(ns float64) Latency { return Latency(ns * float64(time.Nanosecond)) }

// Ns reports the latency in nanoseconds.
func (l Latency) Ns() float64 { return float64(l) / float64(time.Nanosecond) }

// Duration converts to a time.Duration.
func (l Latency) Duration() time.Duration { return time.Duration(l) }

func (l Latency) String() string { return fmt.Sprintf("%.0fns", l.Ns()) }

// TransferRate is a DIMM or link signalling rate in mega-transfers per
// second (e.g. DDR5-4800 is 4800 MT/s).
type TransferRate int

// MTps reports the rate in MT/s.
func (r TransferRate) MTps() int { return int(r) }

func (r TransferRate) String() string { return fmt.Sprintf("%dMT/s", int(r)) }

// DDRPeak returns the theoretical peak bandwidth of a DDR channel at the
// given rate: rate × 8 bytes per transfer (64-bit bus).
func DDRPeak(rate TransferRate) Bandwidth {
	return Bandwidth(float64(rate) * 1e6 * 8)
}

// TimeFor returns how long moving n bytes takes at bandwidth b.
// A zero or negative bandwidth yields zero duration; callers must guard
// against interpreting that as "instant" where it matters.
func TimeFor(n Size, b Bandwidth) time.Duration {
	if b <= 0 || n <= 0 {
		return 0
	}
	sec := float64(n) / float64(b)
	return time.Duration(sec * float64(time.Second))
}

// RateOf returns the bandwidth achieved moving n bytes in d.
func RateOf(n Size, d time.Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(n) / d.Seconds())
}
