package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{64, "64B"},
		{KiB, "1KiB"},
		{64 * GiB, "64GiB"},
		{16 * GiB, "16GiB"},
		{3 * MiB, "3MiB"},
		{TiB, "1TiB"},
		{1500, "1500B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Size(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBandwidthConstructors(t *testing.T) {
	b := GBps(22.0)
	if got := b.GBps(); got != 22.0 {
		t.Errorf("GBps round-trip = %v, want 22", got)
	}
	if got := b.MBps(); got != 22000.0 {
		t.Errorf("MBps = %v, want 22000", got)
	}
	if s := b.String(); s != "22.00 GB/s" {
		t.Errorf("String = %q", s)
	}
	if s := MBps(500).String(); s != "500.00 MB/s" {
		t.Errorf("String = %q", s)
	}
	if s := Bandwidth(12).String(); s != "12 B/s" {
		t.Errorf("String = %q", s)
	}
}

func TestLatency(t *testing.T) {
	l := Nanoseconds(95)
	if got := l.Ns(); got != 95 {
		t.Errorf("Ns = %v, want 95", got)
	}
	if got := l.Duration(); got != 95*time.Nanosecond {
		t.Errorf("Duration = %v", got)
	}
	if s := l.String(); s != "95ns" {
		t.Errorf("String = %q", s)
	}
}

func TestDDRPeak(t *testing.T) {
	// DDR5-4800: 4800 MT/s * 8 B = 38.4 GB/s per channel.
	if got := DDRPeak(4800).GBps(); got != 38.4 {
		t.Errorf("DDR5-4800 peak = %v GB/s, want 38.4", got)
	}
	// DDR4-1333 (the paper's FPGA DIMMs): 10.664 GB/s.
	got := DDRPeak(1333).GBps()
	if got < 10.6 || got > 10.7 {
		t.Errorf("DDR4-1333 peak = %v GB/s, want ~10.66", got)
	}
}

func TestTimeForAndRateOf(t *testing.T) {
	d := TimeFor(GB, GBps(1))
	if d != time.Second {
		t.Errorf("TimeFor(1GB, 1GB/s) = %v, want 1s", d)
	}
	if got := TimeFor(0, GBps(1)); got != 0 {
		t.Errorf("TimeFor(0) = %v, want 0", got)
	}
	if got := TimeFor(GB, 0); got != 0 {
		t.Errorf("TimeFor(bw=0) = %v, want 0", got)
	}
	r := RateOf(2*GB, time.Second)
	if r.GBps() != 2 {
		t.Errorf("RateOf = %v, want 2 GB/s", r.GBps())
	}
	if got := RateOf(GB, 0); got != 0 {
		t.Errorf("RateOf(d=0) = %v, want 0", got)
	}
}

// TimeFor and RateOf are inverses up to rounding error.
func TestTimeRateRoundTrip(t *testing.T) {
	f := func(nRaw int32, gbps uint8) bool {
		// Mask (not mod) so negative inputs cannot shrink n below
		// 1 GiB, where nanosecond quantisation of the duration alone
		// exceeds the 1e-6 tolerance.
		n := Size(int64(nRaw)&(1<<30-1) + (1 << 30)) // 1..2 GiB
		b := GBps(float64(gbps%100) + 1)             // 1..100 GB/s
		d := TimeFor(n, b)
		back := RateOf(n, d)
		rel := (float64(back) - float64(b)) / float64(b)
		return rel < 1e-6 && rel > -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferRateString(t *testing.T) {
	if s := TransferRate(4800).String(); s != "4800MT/s" {
		t.Errorf("String = %q", s)
	}
	if TransferRate(1333).MTps() != 1333 {
		t.Error("MTps mismatch")
	}
}
