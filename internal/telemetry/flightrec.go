package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// The flit flight recorder: a fixed-size ring of wire-level records fed
// from a port's flit trace slot. Under load the feed is sampled (the
// port decides which transactions to tap, so the recorder itself never
// adds per-flit cost to untapped traffic); CRC-failed flits and
// back-invalidate snoops are recorded unconditionally. When RAS walks a
// device into Degraded or Evacuating, it dumps the ring — so every
// health event carries the wire history that preceded it, the way a
// real appliance's crash cart would.

// FlitRecord is one recorded wire event. The fields are a decoded-
// without-validating view of the flit header: cheap to fill on the hot
// path, rich enough to reconstruct what was on the wire.
type FlitRecord struct {
	// Seq is the recorder-global sequence number (records survive ring
	// wraparound in order).
	Seq uint64
	// When is nanoseconds since the recorder started.
	When int64
	// Kind is the wire kind byte (request/response/data/BISnp/BIRsp/
	// SQ/CQ — see the cxl flit header).
	Kind uint8
	// Op is the opcode byte for request-shaped kinds.
	Op uint8
	// Err marks a flit that failed its CRC at the receiver: the link
	// retried (or gave up on) this exact wire image.
	Err bool
	// Tag is the transaction tag.
	Tag uint16
	// Addr is the address (or data-beat sequence) word.
	Addr uint64
}

func (r FlitRecord) String() string {
	flag := ""
	if r.Err {
		flag = " CRC-FAIL"
	}
	return fmt.Sprintf("#%d +%dns kind=%d op=%d tag=%d addr=%#x%s",
		r.Seq, r.When, r.Kind, r.Op, r.Tag, r.Addr, flag)
}

// frSlot is one ring slot: a claim word (0 free, 1 busy) arbitrating
// writers that lapped into each other and the Dump reader, plus the
// record. full reports whether the slot has ever been written.
type frSlot struct {
	claim atomic.Uint32
	full  atomic.Uint32
	rec   FlitRecord
}

// FlightRecorder is a fixed-size, concurrency-safe ring of FlitRecords.
// Writers claim positions with one atomic add and publish under a
// per-slot claim word; with the ring orders of magnitude deeper than
// the writer count, the claim CAS never spins in practice. Dump is the
// cold path and takes each slot's claim briefly while copying.
type FlightRecorder struct {
	start time.Time
	mask  uint64
	seq   atomic.Uint64
	_     [7]uint64
	slots []frSlot
}

// DefaultRecorderSlots is the default ring depth: enough wire history
// to cover the retry storms the RAS thresholds trip on.
const DefaultRecorderSlots = 1024

// NewFlightRecorder builds a recorder with the given ring depth
// (rounded up to a power of two; 0 takes DefaultRecorderSlots).
func NewFlightRecorder(slots int) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultRecorderSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &FlightRecorder{start: time.Now(), mask: uint64(n - 1), slots: make([]frSlot, n)}
}

// Record appends one record, stamping Seq and When. Zero allocations;
// safe for any number of concurrent writers.
func (fr *FlightRecorder) Record(rec FlitRecord) {
	pos := fr.seq.Add(1) - 1
	slot := &fr.slots[pos&fr.mask]
	for !slot.claim.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	rec.Seq = pos
	rec.When = int64(time.Since(fr.start))
	slot.rec = rec
	slot.full.Store(1)
	slot.claim.Store(0)
}

// Recorded reports how many records have ever been appended (≥ the ring
// depth means wraparound has discarded the oldest).
func (fr *FlightRecorder) Recorded() uint64 { return fr.seq.Load() }

// Dump copies out the ring's live records in sequence order — the wire
// history, oldest first. Safe to call while writers are appending; each
// slot is copied under its claim word, so no record is ever torn.
func (fr *FlightRecorder) Dump() []FlitRecord {
	out := make([]FlitRecord, 0, len(fr.slots))
	for i := range fr.slots {
		slot := &fr.slots[i]
		for !slot.claim.CompareAndSwap(0, 1) {
			runtime.Gosched()
		}
		if slot.full.Load() != 0 {
			out = append(out, slot.rec)
		}
		slot.claim.Store(0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears the ring (the sequence keeps counting, so a dump after a
// reset never mixes epochs).
func (fr *FlightRecorder) Reset() {
	for i := range fr.slots {
		slot := &fr.slots[i]
		for !slot.claim.CompareAndSwap(0, 1) {
			runtime.Gosched()
		}
		slot.full.Store(0)
		slot.claim.Store(0)
	}
}
