package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileOracle checks the bucketed quantiles against the
// exact order statistics of the recorded sample set: every reported
// quantile must be within the geometry's 2^-5 relative error bound of
// the true value.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dists := map[string]func() int64{
		"uniform":  func() int64 { return rng.Int63n(1_000_000) },
		"exp":      func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognorm":  func() int64 { return int64(1 + 100*rng.Float64()*float64(uint64(1)<<uint(rng.Intn(30)))) },
		"constant": func() int64 { return 4242 },
		"tiny":     func() int64 { return rng.Int63n(20) },
	}
	for name, gen := range dists {
		h := NewHistogram()
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen()
			samples = append(samples, v)
			h.Record(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var snap HistSnapshot
		h.Snapshot(&snap)
		if snap.Count != int64(len(samples)) {
			t.Fatalf("%s: count %d want %d", name, snap.Count, len(samples))
		}
		if snap.Max != samples[len(samples)-1] {
			t.Fatalf("%s: max %d want %d", name, snap.Max, samples[len(samples)-1])
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			rank := int(q * float64(len(samples)))
			if rank > 0 {
				rank--
			}
			truth := samples[rank]
			got := snap.Quantile(q)
			// The bucketed value must sit within one sub-bucket of the
			// truth: |got-truth| <= truth/2^5 + 1 (the +1 covers the
			// exact-integer region).
			bound := truth>>histSubBits + 1
			if got < truth-bound || got > truth+bound {
				t.Errorf("%s: q%.3f got %d want %d±%d", name, q, got, truth, bound)
			}
		}
	}
}

// TestHistogramBucketRoundTrip checks that every bucket's midpoint maps
// back to the same bucket — the geometry is self-consistent.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		mid := bucketMid(idx)
		if mid < 0 {
			// Top octaves overflow int64; out of recordable range.
			continue
		}
		if got := bucketOf(mid); got != idx {
			t.Fatalf("bucket %d: mid %d maps to bucket %d", idx, mid, got)
		}
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("negative value maps to bucket %d, want 0", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (run under -race) and checks that no sample is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 50000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots must not race or tear
		defer close(done)
		var snap HistSnapshot
		for i := 0; i < 100; i++ {
			h.Snapshot(&snap)
			var sum int64
			for b := range snap.buckets {
				sum += snap.buckets[b]
			}
			if sum > goroutines*perG {
				t.Errorf("snapshot bucket sum %d exceeds records issued", sum)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	var snap HistSnapshot
	h.Snapshot(&snap)
	if snap.Count != goroutines*perG {
		t.Fatalf("count %d want %d", snap.Count, goroutines*perG)
	}
	var sum int64
	for b := range snap.buckets {
		sum += snap.buckets[b]
	}
	if sum != goroutines*perG {
		t.Fatalf("bucket sum %d want %d", sum, goroutines*perG)
	}
}

// TestHistogramRecordZeroAlloc is the hot-path contract: Record and
// RecordSince must not allocate.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := NewHistogram()
	if avg := testing.AllocsPerRun(1000, func() { h.Record(1234) }); avg != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", avg)
	}
	start := time.Now()
	if avg := testing.AllocsPerRun(1000, func() { h.RecordSince(start) }); avg != 0 {
		t.Fatalf("RecordSince allocates %.1f allocs/op, want 0", avg)
	}
}

// TestHistogramMerge checks Merge equals recording into one histogram.
func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a.Record(rng.Int63n(1 << 20))
		b.Record(rng.Int63n(1 << 40))
	}
	var sa, sb HistSnapshot
	a.Snapshot(&sa)
	b.Snapshot(&sb)
	merged := sa
	merged.Merge(&sb)
	if merged.Count != sa.Count+sb.Count || merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merge count/sum mismatch")
	}
	if merged.Max != sb.Max && merged.Max != sa.Max {
		t.Fatalf("merge max %d not from either side", merged.Max)
	}
	if merged.Quantile(0.5) < sa.Quantile(0.5)/2 {
		t.Fatalf("merged median implausibly low")
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty snapshot must report zeros")
	}
}
