package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Exposition: the registry's Gather output rendered as Prometheus text
// (histograms as summaries with quantile labels) and as a JSON
// snapshot, served together with pprof from telemetry.Serve.

// quantiles reported for every histogram, in exposition order.
var expoQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// withLabel splices one more k="v" pair into a pre-rendered label set.
func withLabel(labels, k, v string) string {
	pair := k + `="` + v + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}

// WritePrometheus renders samples in the Prometheus text exposition
// format. Counters and gauges are scalar lines; histograms render as
// summaries: quantile-labelled lines plus _sum and _count.
func WritePrometheus(w io.Writer, samples []Sample) error {
	lastTyped := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastTyped {
			typ := "gauge"
			switch s.Kind {
			case KindCounter:
				typ = "counter"
			case KindHistogram:
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typ); err != nil {
				return err
			}
			lastTyped = s.Name
		}
		if s.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", s.Name, s.Labels, s.Value); err != nil {
				return err
			}
			continue
		}
		h := s.Hist
		for _, eq := range expoQuantiles {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, withLabel(s.Labels, "quantile", eq.label), h.Quantile(eq.q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", s.Name, s.Labels, h.Sum, s.Name, s.Labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// jsonSample is the JSON shape of one sample; histograms carry their
// summary statistics instead of raw buckets.
type jsonSample struct {
	Name   string   `json:"name"`
	Labels string   `json:"labels,omitempty"`
	Kind   string   `json:"kind"`
	Value  *float64 `json:"value,omitempty"`
	Count  *int64   `json:"count,omitempty"`
	Sum    *int64   `json:"sum,omitempty"`
	Max    *int64   `json:"max,omitempty"`
	Mean   *float64 `json:"mean,omitempty"`
	P50    *int64   `json:"p50,omitempty"`
	P90    *int64   `json:"p90,omitempty"`
	P99    *int64   `json:"p99,omitempty"`
	P999   *int64   `json:"p999,omitempty"`
}

// WriteJSON renders samples as a JSON array.
func WriteJSON(w io.Writer, samples []Sample) error {
	out := make([]jsonSample, 0, len(samples))
	for i := range samples {
		s := &samples[i]
		js := jsonSample{Name: s.Name, Labels: s.Labels, Kind: s.Kind.String()}
		if s.Kind == KindHistogram {
			h := s.Hist
			mean := h.Mean()
			p50, p90 := h.Quantile(0.50), h.Quantile(0.90)
			p99, p999 := h.Quantile(0.99), h.Quantile(0.999)
			js.Count, js.Sum, js.Max, js.Mean = &h.Count, &h.Sum, &h.Max, &mean
			js.P50, js.P90, js.P99, js.P999 = &p50, &p90, &p99, &p999
		} else {
			v := s.Value
			js.Value = &v
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the telemetry HTTP mux for a registry: /metrics
// (Prometheus text), /metrics.json (JSON snapshot), and /debug/pprof.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Gather())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, r.Gather())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes a registry over HTTP on addr (":0" picks a free port)
// and returns the running server. The caller owns shutdown via Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
