package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestFlightRecorderWraparound fills the ring past capacity and checks
// that the dump holds exactly the newest window, in order.
func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(64)
	const n = 200
	for i := 0; i < n; i++ {
		fr.Record(FlitRecord{Kind: 2, Addr: uint64(i)})
	}
	if fr.Recorded() != n {
		t.Fatalf("recorded %d want %d", fr.Recorded(), n)
	}
	dump := fr.Dump()
	if len(dump) != 64 {
		t.Fatalf("dump holds %d records, want ring depth 64", len(dump))
	}
	for i, rec := range dump {
		wantSeq := uint64(n - 64 + i)
		if rec.Seq != wantSeq || rec.Addr != wantSeq {
			t.Fatalf("dump[%d] = seq %d addr %d, want %d", i, rec.Seq, rec.Addr, wantSeq)
		}
	}
}

// TestFlightRecorderPartial dumps a ring that never wrapped.
func TestFlightRecorderPartial(t *testing.T) {
	fr := NewFlightRecorder(64)
	for i := 0; i < 10; i++ {
		fr.Record(FlitRecord{Kind: 0, Tag: uint16(i)})
	}
	dump := fr.Dump()
	if len(dump) != 10 {
		t.Fatalf("dump holds %d records, want 10", len(dump))
	}
	for i, rec := range dump {
		if rec.Seq != uint64(i) || rec.Tag != uint16(i) {
			t.Fatalf("dump[%d] out of order: %+v", i, rec)
		}
	}
	fr.Reset()
	if len(fr.Dump()) != 0 {
		t.Fatalf("dump after reset not empty")
	}
	fr.Record(FlitRecord{Kind: 1})
	dump = fr.Dump()
	if len(dump) != 1 || dump[0].Seq != 10 {
		t.Fatalf("sequence must keep counting across Reset, got %+v", dump)
	}
}

// TestFlightRecorderErrFlag checks the CRC-fail flag round-trips and
// renders in String().
func TestFlightRecorderErrFlag(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlitRecord{Kind: 2, Err: true, Addr: 0xdead})
	dump := fr.Dump()
	if len(dump) != 1 || !dump[0].Err {
		t.Fatalf("Err flag lost: %+v", dump)
	}
	if s := dump[0].String(); !strings.Contains(s, "CRC-FAIL") || !strings.Contains(s, "0xdead") {
		t.Fatalf("String() = %q", s)
	}
}

// TestFlightRecorderConcurrent hammers the ring from many writers while
// a reader dumps (run under -race): dumps must stay sequence-ordered
// with no torn records.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(kind uint8) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				fr.Record(FlitRecord{Kind: kind, Addr: uint64(i)})
			}
		}(uint8(g))
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			dump := fr.Dump()
			last := uint64(0)
			for _, rec := range dump {
				if rec.Seq < last {
					t.Errorf("dump out of order: %d after %d", rec.Seq, last)
					return
				}
				last = rec.Seq
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := fr.Recorded(); got != 4*20000 {
		t.Fatalf("recorded %d want %d", got, 4*20000)
	}
}

// TestFlightRecorderZeroAlloc guards the hot path.
func TestFlightRecorderZeroAlloc(t *testing.T) {
	fr := NewFlightRecorder(256)
	rec := FlitRecord{Kind: 2, Addr: 42}
	if avg := testing.AllocsPerRun(1000, func() { fr.Record(rec) }); avg != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", avg)
	}
}
