package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestRegistryGather checks that owned metrics, registered histograms,
// and collector hooks all land in one deterministically sorted gather.
func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("zz_ops_total", "")
	g := r.NewGauge("aa_depth", Labels("port", "0"))
	h := r.NewHistogram("mm_latency_ns", Labels("vc", "3"))
	r.RegisterCollector(func(e *Emitter) {
		e.Counter("kk_hook_total", Labels("src", "collector"), 7)
		e.Gauge("kk_hook_gauge", "", 2.5)
	})
	c.Add(41)
	c.Inc()
	g.Set(9)
	g.Add(-2)
	h.Record(100)
	h.Record(200)

	samples := r.Gather()
	if len(samples) != 5 {
		t.Fatalf("gather returned %d samples, want 5", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Name > samples[i].Name {
			t.Fatalf("gather not sorted: %q after %q", samples[i].Name, samples[i-1].Name)
		}
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if s := byName["zz_ops_total"]; s.Kind != KindCounter || s.Value != 42 {
		t.Fatalf("counter sample %+v", s)
	}
	if s := byName["aa_depth"]; s.Kind != KindGauge || s.Value != 7 || s.Labels != `{port="0"}` {
		t.Fatalf("gauge sample %+v", s)
	}
	if s := byName["mm_latency_ns"]; s.Kind != KindHistogram || s.Hist.Count != 2 || s.Hist.Sum != 300 {
		t.Fatalf("histogram sample %+v", s)
	}
	if s := byName["kk_hook_total"]; s.Value != 7 {
		t.Fatalf("collector counter %+v", s)
	}
}

// TestLabels checks rendering and escaping.
func TestLabels(t *testing.T) {
	if got := Labels(); got != "" {
		t.Fatalf("empty labels = %q", got)
	}
	if got := Labels("a", "1", "b", "x"); got != `{a="1",b="x"}` {
		t.Fatalf("labels = %q", got)
	}
	if got := Labels("a", `q"u\o`+"\n"); got != `{a="q\"u\\o\n"}` {
		t.Fatalf("escaped labels = %q", got)
	}
}

// TestRegistryCollectDuringTraffic gathers concurrently with recorders
// mutating every metric type (run under -race): gathers must always see
// internally consistent, monotonically plausible values.
func TestRegistryCollectDuringTraffic(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("traffic_ops_total", "")
	h := r.NewHistogram("traffic_latency_ns", "")
	var hookHits sync.Map
	r.RegisterCollector(func(e *Emitter) {
		hookHits.Store("hit", true)
		e.Counter("traffic_hook_total", "", c.Value())
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Record(int64(i % 10000))
			}
		}()
	}
	var lastCount int64
	for i := 0; i < 200; i++ {
		for _, s := range r.Gather() {
			if s.Name == "traffic_ops_total" {
				if int64(s.Value) < lastCount {
					t.Errorf("counter went backwards: %v < %d", s.Value, lastCount)
				}
				lastCount = int64(s.Value)
			}
			if s.Name == "traffic_latency_ns" && s.Hist.Count > 0 {
				if q := s.Hist.Quantile(0.99); q < 0 || q > 20000 {
					t.Errorf("implausible p99 %d mid-traffic", q)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	if _, ok := hookHits.Load("hit"); !ok {
		t.Fatalf("collector hook never ran")
	}
}

// TestWritePrometheus checks the text exposition format.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ops_total", Labels("port", "1")).Add(3)
	h := r.NewHistogram("lat_ns", Labels("vc", "0"))
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{port="1"} 3`,
		"# TYPE lat_ns summary",
		`lat_ns{vc="0",quantile="0.5"}`,
		`lat_ns{vc="0",quantile="0.999"}`,
		`lat_ns_count{vc="0"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestServe spins the HTTP endpoint and checks /metrics, /metrics.json
// and pprof respond.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "").Add(5)
	h := r.NewHistogram("served_lat_ns", "")
	h.Record(1000)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "served_total 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &parsed); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	found := false
	for _, m := range parsed {
		if m["name"] == "served_lat_ns" {
			found = true
			if m["count"].(float64) != 1 {
				t.Errorf("json histogram count %v", m["count"])
			}
		}
	}
	if !found {
		t.Errorf("metrics.json missing histogram")
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Errorf("pprof cmdline empty")
	}
}
