package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric sample.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that may move both ways.
	KindGauge
	// KindHistogram is a latency/size distribution with quantiles.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Sample is one gathered metric: a name, a pre-rendered Prometheus
// label set (`{k="v",...}` or empty), and either a scalar value or a
// histogram snapshot.
type Sample struct {
	Name   string
	Labels string
	Kind   Kind
	Value  float64
	Hist   *HistSnapshot
}

// Labels renders alternating key/value pairs as a Prometheus label set.
// Values are quote-escaped; an empty argument list renders as "".
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		if strings.ContainsAny(v, `"\`+"\n") {
			v = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
		}
		b.WriteString(v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Emitter receives samples during a Gather walk. Collectors call its
// typed methods; the registry owns the backing slice.
type Emitter struct {
	samples []Sample
}

// Counter emits a monotonic count.
func (e *Emitter) Counter(name, labels string, v int64) {
	e.samples = append(e.samples, Sample{Name: name, Labels: labels, Kind: KindCounter, Value: float64(v)})
}

// Gauge emits an instantaneous value.
func (e *Emitter) Gauge(name, labels string, v float64) {
	e.samples = append(e.samples, Sample{Name: name, Labels: labels, Kind: KindGauge, Value: v})
}

// Histogram emits a histogram snapshot.
func (e *Emitter) Histogram(name, labels string, h *Histogram) {
	s := new(HistSnapshot)
	h.Snapshot(s)
	e.samples = append(e.samples, Sample{Name: name, Labels: labels, Kind: KindHistogram, Hist: s})
}

// Collector is a subsystem hook: called during Gather, it snapshots
// counters the subsystem already maintains (atomics on its own hot
// paths) and emits them. Collectors must be safe to call concurrently
// with the subsystem's traffic — which they are for free when they only
// Load atomic counters.
type Collector func(e *Emitter)

// Registry is the process-wide metric namespace: owned scalar metrics
// (counters and gauges allocated here), owned histograms, and the
// collector hooks that pull in every subsystem's existing counters. All
// registration is cold-path; Gather is the only reader and walks a
// point-in-time snapshot of the registration lists.
type Registry struct {
	mu         sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	hists      []namedHist
	collectors []Collector
}

type namedHist struct {
	name   string
	labels string
	h      *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a registry-owned monotonic counter.
type Counter struct {
	name   string
	labels string
	v      atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a registry-owned instantaneous value.
type Gauge struct {
	name   string
	labels string
	v      atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewCounter allocates and registers a counter.
func (r *Registry) NewCounter(name, labels string) *Counter {
	c := &Counter{name: name, labels: labels}
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// NewGauge allocates and registers a gauge.
func (r *Registry) NewGauge(name, labels string) *Gauge {
	g := &Gauge{name: name, labels: labels}
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
	return g
}

// NewHistogram allocates and registers a histogram.
func (r *Registry) NewHistogram(name, labels string) *Histogram {
	h := NewHistogram()
	r.mu.Lock()
	r.hists = append(r.hists, namedHist{name: name, labels: labels, h: h})
	r.mu.Unlock()
	return h
}

// RegisterHistogram registers an externally-owned histogram.
func (r *Registry) RegisterHistogram(name, labels string, h *Histogram) {
	r.mu.Lock()
	r.hists = append(r.hists, namedHist{name: name, labels: labels, h: h})
	r.mu.Unlock()
}

// RegisterCollector adds a subsystem hook to the Gather walk.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Gather walks every owned metric and collector and returns the samples
// sorted by name then label set — a deterministic exposition order, so
// diffs of two gathers line up.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]namedHist(nil), r.hists...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	e := &Emitter{samples: make([]Sample, 0, len(counters)+len(gauges)+len(hists)+16)}
	for _, c := range counters {
		e.Counter(c.name, c.labels, c.v.Load())
	}
	for _, g := range gauges {
		e.Gauge(g.name, g.labels, float64(g.v.Load()))
	}
	for _, nh := range hists {
		e.Histogram(nh.name, nh.labels, nh.h)
	}
	for _, c := range collectors {
		c(e)
	}
	sort.SliceStable(e.samples, func(i, j int) bool {
		if e.samples[i].Name != e.samples[j].Name {
			return e.samples[i].Name < e.samples[j].Name
		}
		return e.samples[i].Labels < e.samples[j].Labels
	})
	return e.samples
}
