// Package telemetry is the fabric-wide observability plane: a
// lock-free log-bucketed latency histogram cheap enough to live on the
// data path, a process-wide registry that unifies every subsystem's
// counters behind one exposition surface (Prometheus text, JSON, and
// the fabricctl top/trace tooling), and a flit-level flight recorder
// that keeps the wire history preceding a health event.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the stack (cxl, coherency, ras, fabric, tiering, cluster)
// can hang its counters here without import cycles. Subsystems do not
// add locks to their data paths to participate — they register cheap
// Collector hooks that snapshot the atomic counters they already
// maintain, and only exposition pays for the walk.
package telemetry

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Histogram bucket geometry: values below 2^histSubBits land in exact
// unit buckets; above that, each power-of-two octave splits into
// 2^histSubBits log-spaced sub-buckets (HDR style), so the relative
// quantile error is bounded by 2^-histSubBits ≈ 3.1% at any magnitude
// from 1 ns to ~292 years. The bucket index is a handful of ALU ops
// (bits.Len64, shift, mask) — no branches on the magnitude, no floats.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	histSubMask    = histSubBuckets - 1
	// histBuckets covers every int64 magnitude: 64-histSubBits octaves
	// plus the exact region.
	histBuckets = (64 - histSubBits + 1) << histSubBits
)

// histMaxShards caps the per-CPU sharding. Each shard is its own run of
// cache lines, so concurrent recorders on different shards never
// contend; 8 shards flatten the contention curve on the machines the
// benches run on without making merge or memory cost silly.
const histMaxShards = 8

// histShard is one shard's bucket array plus its summary counters,
// padded so neighbouring shards do not false-share.
type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	_       [5]int64
	buckets [histBuckets]atomic.Int64
}

// Histogram is a lock-free latency histogram: Record is a few atomic
// adds on a shard chosen from the caller's stack address (a cheap
// per-goroutine spread), costs zero allocations, and is safe for any
// number of concurrent recorders. Snapshots merge the shards into one
// consistent-enough view (each bucket is read atomically; the total is
// the sum of momentarily-consistent buckets, the standard monotonic
// counter contract).
type Histogram struct {
	shardMask uintptr
	shards    []histShard
}

// NewHistogram builds a histogram sharded for the current GOMAXPROCS.
func NewHistogram() *Histogram {
	n := runtime.GOMAXPROCS(0)
	shards := 1
	for shards < n && shards < histMaxShards {
		shards <<= 1
	}
	return &Histogram{shardMask: uintptr(shards - 1), shards: make([]histShard, shards)}
}

// bucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0 — latency cannot be negative, but a caller handing us a
// clock anomaly should not corrupt the array.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - histSubBits
	return (exp+1)<<histSubBits + int((u>>uint(exp))&histSubMask)
}

// bucketMid returns the representative (midpoint) value of a bucket —
// the value quantile lookups report for samples that landed there.
func bucketMid(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	exp := uint(idx>>histSubBits - 1)
	low := uint64(histSubBuckets|idx&histSubMask) << exp
	return int64(low + 1<<exp/2)
}

// shard picks this goroutine's shard from a stack address: goroutine
// stacks live in distinct spans, so concurrent recorders spread across
// shards without any per-record shared state. Any shard is correct —
// the spread only buys contention relief.
func (h *Histogram) shard() *histShard {
	var probe byte
	return &h.shards[(uintptr(unsafe.Pointer(&probe))>>10)&h.shardMask]
}

// Record adds one observation. It is the hot-path entry point: zero
// allocations, a handful of nanoseconds, safe under any concurrency.
func (h *Histogram) Record(v int64) {
	s := h.shard()
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// RecordSince records the elapsed nanoseconds since start.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(int64(time.Since(start)))
}

// HistSnapshot is a merged point-in-time view of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	buckets [histBuckets]int64
}

// Snapshot merges the shards into s (reusing its storage, so a caller
// polling in a loop allocates once).
func (h *Histogram) Snapshot(s *HistSnapshot) {
	s.Count, s.Sum, s.Max = 0, 0, 0
	for i := range s.buckets {
		s.buckets[i] = 0
	}
	for j := range h.shards {
		sh := &h.shards[j]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
		for i := range sh.buckets {
			if n := sh.buckets[i].Load(); n != 0 {
				s.buckets[i] += n
			}
		}
	}
}

// Merge adds other's buckets and counters into s.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.buckets {
		s.buckets[i] += other.buckets[i]
	}
}

// Quantile reports the value at quantile q (0 < q <= 1) as the midpoint
// of the bucket holding the q·Count-th sample — within 2^-5 ≈ 3.1%
// relative error of the true order statistic. Returns 0 on an empty
// snapshot.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range s.buckets {
		seen += s.buckets[i]
		if seen >= rank {
			mid := bucketMid(i)
			if mid > s.Max && s.Max > 0 {
				return s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Mean reports the arithmetic mean, exact (from Sum), not bucketed.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
