package streamer

import (
	"strings"
	"testing"
)

func TestRenderPlot(t *testing.T) {
	h := harness(t)
	f, err := h.Figure(7)
	if err != nil {
		t.Fatal(err)
	}
	p := f.RenderPlot(Group1b, 60, 12)
	// Both legend symbols appear in the plot area.
	if !strings.Contains(p, SymbolDDR5OnNode) || !strings.Contains(p, SymbolCXLDDR4) {
		t.Errorf("plot missing symbols:\n%s", p)
	}
	if !strings.Contains(p, "GB/s") || !strings.Contains(p, "Class 1.b") {
		t.Error("plot missing annotations")
	}
	lines := strings.Split(p, "\n")
	if len(lines) < 14 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
	// Tiny dimensions are clamped, not crashed.
	if out := f.RenderPlot(Group1a, 1, 1); out == "" {
		t.Error("clamped plot empty")
	}
	// Unknown group renders a notice.
	if out := f.RenderPlot(GroupID("zz"), 40, 10); !strings.Contains(out, "no data") {
		t.Error("missing-group plot")
	}
	// All-groups rendering contains every class.
	all := f.RenderPlots(50, 10)
	for _, g := range Groups {
		if !strings.Contains(all, g.Title()) {
			t.Errorf("RenderPlots missing %s", g)
		}
	}
}

func TestPlotVerticalOrdering(t *testing.T) {
	// In group 1b the DDR5 series must plot above the CXL series:
	// find the column of the last thread count and compare rows.
	h := harness(t)
	f, err := h.Figure(5)
	if err != nil {
		t.Fatal(err)
	}
	const w, hgt = 40, 20
	p := f.RenderPlot(Group1b, w, hgt)
	lines := strings.Split(p, "\n")
	rowOf := func(sym string) int {
		for i, l := range lines {
			if idx := strings.LastIndex(l, sym); idx > 30 { // right side of plot
				return i
			}
		}
		return -1
	}
	ddr5 := rowOf(SymbolDDR5OnNode)
	cxl := rowOf(SymbolCXLDDR4)
	if ddr5 < 0 || cxl < 0 {
		t.Skip("symbols collided into '*'; ordering not checkable on this geometry")
	}
	if ddr5 >= cxl {
		t.Errorf("DDR5 series (row %d) should plot above CXL (row %d)", ddr5, cxl)
	}
}
