// Package streamer is the paper's released benchmarking tool (§1.4: "we
// open-sourced the entire benchmarking methodology as an easy-to-use
// and automated tool named STREAMer"): it drives STREAM and STREAM-PMem
// over the full §3.2 configuration matrix and regenerates every figure
// and table of the evaluation.
//
// Figure mapping (§4): Figure 5 = Scale, Figure 6 = Add, Figure 7 =
// Copy, Figure 8 = Triad; each carries five test groups, Classes 1.a-1.c
// (App-Direct) and 2.a-2.b (Memory Mode). Legend conventions follow the
// paper: the symbol distinguishes on-node DDR4 (▲), on-node DDR5 (●)
// and CXL-attached DDR4 (×); the annotation pmem#N / numa#N gives the
// access mode and target node.
package streamer

import (
	"fmt"
	"strings"

	"cxlpmem/internal/core"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/topology"
)

// GroupID names a test group of §3.2.
type GroupID string

// The five groups.
const (
	Group1a GroupID = "1a" // local memory access as PMem
	Group1b GroupID = "1b" // remote memory access as PMem
	Group1c GroupID = "1c" // remote memory as PMem (thread affinity)
	Group2a GroupID = "2a" // remote CC-NUMA
	Group2b GroupID = "2b" // remote CC-NUMA (all cores)
)

// Groups lists them in presentation order (subfigures a-e).
var Groups = []GroupID{Group1a, Group1b, Group1c, Group2a, Group2b}

// Title returns the paper's caption for a group.
func (g GroupID) Title() string {
	switch g {
	case Group1a:
		return "Class 1.a: Local memory access as PMem"
	case Group1b:
		return "Class 1.b: Remote memory access as PMem"
	case Group1c:
		return "Class 1.c: Remote memory as PMem (thread affinity)"
	case Group2a:
		return "Class 2.a: Remote CC-NUMA"
	case Group2b:
		return "Class 2.b: Remote CC-NUMA (all cores)"
	default:
		return string(g)
	}
}

// Symbols per the paper's legend.
const (
	SymbolDDR4OnNode = "▲"
	SymbolDDR5OnNode = "●"
	SymbolCXLDDR4    = "×"
)

// Series is one trend line: bandwidth vs thread count.
type Series struct {
	// Label combines the paper's annotation conventions, e.g.
	// "socket0 pmem#2" or "close numa#1".
	Label string
	// Symbol per the legend (▲ ● ×).
	Symbol string
	// Setup identifies the machine ("setup1" or "setup2").
	Setup string
	// Threads is the x-axis.
	Threads []int
	// GBps is the y-axis.
	GBps []float64
}

// At returns the bandwidth at a given thread count.
func (s *Series) At(threads int) (float64, bool) {
	for i, t := range s.Threads {
		if t == threads {
			return s.GBps[i], true
		}
	}
	return 0, false
}

// Max returns the peak of the series.
func (s *Series) Max() float64 {
	var m float64
	for _, v := range s.GBps {
		if v > m {
			m = v
		}
	}
	return m
}

// Figure is one of Figures 5-8: a kernel across the five groups.
type Figure struct {
	Number int
	Op     stream.Op
	Groups map[GroupID][]Series
}

// FigureOps maps figure numbers to kernels, following §4's order.
var FigureOps = map[int]stream.Op{
	5: stream.Scale,
	6: stream.Add,
	7: stream.Copy,
	8: stream.Triad,
}

// Harness drives the full matrix over the two setups.
type Harness struct {
	S1 *core.Runtime // Setup #1: SPR + CXL
	S2 *core.Runtime // Setup #2: Xeon Gold DDR4
}

// NewHarness assembles both machines.
func NewHarness() (*Harness, error) {
	s1, err := core.NewSetup1(topology.Setup1Options{})
	if err != nil {
		return nil, err
	}
	s2, err := core.NewSetup2()
	if err != nil {
		return nil, err
	}
	return &Harness{S1: s1, S2: s2}, nil
}

// sweep produces one series.
func (h *Harness) sweep(rt *core.Runtime, setup, label, symbol string,
	cores []topology.Core, node topology.NodeID, op stream.Op, mode perf.AccessMode) (Series, error) {
	rates, err := rt.Engine.ThreadSweep(cores, node, op.Mix(), mode)
	if err != nil {
		return Series{}, err
	}
	s := Series{Label: label, Symbol: symbol, Setup: setup}
	for i, r := range rates {
		s.Threads = append(s.Threads, i+1)
		s.GBps = append(s.GBps, r.GBps())
	}
	return s, nil
}

// Figure generates one full figure.
func (h *Harness) Figure(number int) (*Figure, error) {
	op, ok := FigureOps[number]
	if !ok {
		return nil, fmt.Errorf("streamer: no figure %d (have 5-8)", number)
	}
	f := &Figure{Number: number, Op: op, Groups: make(map[GroupID][]Series)}
	type spec struct {
		group  GroupID
		rt     *core.Runtime
		setup  string
		label  string
		symbol string
		cores  func() ([]topology.Core, error)
		node   topology.NodeID
		mode   perf.AccessMode
	}
	m1, m2 := h.S1.Machine, h.S2.Machine
	onSocket := func(m *topology.Machine, s topology.SocketID, n int) func() ([]topology.Core, error) {
		return func() ([]topology.Core, error) { return numa.PlaceOnSocket(m, s, n) }
	}
	affinity := func(m *topology.Machine, a numa.Affinity) func() ([]topology.Core, error) {
		return func() ([]topology.Core, error) { return numa.PlaceThreads(m, len(m.Cores()), a) }
	}
	specs := []spec{
		// 1.a — App-Direct, socket-local (paper: pmem0 from socket0,
		// pmem1 from socket1; both DDR5 ●).
		{Group1a, h.S1, "setup1", "socket0 pmem#0", SymbolDDR5OnNode, onSocket(m1, 0, 10), 0, perf.AppDirect},
		{Group1a, h.S1, "setup1", "socket1 pmem#1", SymbolDDR5OnNode, onSocket(m1, 1, 10), 1, perf.AppDirect},
		// 1.b — App-Direct, remote: alternate socket DDR5 over UPI and
		// the CXL DDR4 module.
		{Group1b, h.S1, "setup1", "socket0 pmem#1", SymbolDDR5OnNode, onSocket(m1, 0, 10), 1, perf.AppDirect},
		{Group1b, h.S1, "setup1", "socket0 pmem#2", SymbolCXLDDR4, onSocket(m1, 0, 10), 2, perf.AppDirect},
		{Group1b, h.S1, "setup1", "socket1 pmem#0", SymbolDDR5OnNode, onSocket(m1, 1, 10), 0, perf.AppDirect},
		{Group1b, h.S1, "setup1", "socket1 pmem#2", SymbolCXLDDR4, onSocket(m1, 1, 10), 2, perf.AppDirect},
		// 1.c — both sockets, close vs spread, DDR5 and CXL targets.
		{Group1c, h.S1, "setup1", "close pmem#0", SymbolDDR5OnNode, affinity(m1, numa.Close), 0, perf.AppDirect},
		{Group1c, h.S1, "setup1", "spread pmem#0", SymbolDDR5OnNode, affinity(m1, numa.Spread), 0, perf.AppDirect},
		{Group1c, h.S1, "setup1", "close pmem#2", SymbolCXLDDR4, affinity(m1, numa.Close), 2, perf.AppDirect},
		{Group1c, h.S1, "setup1", "spread pmem#2", SymbolCXLDDR4, affinity(m1, numa.Spread), 2, perf.AppDirect},
		// 2.a — Memory Mode, single socket: remote DDR5 CC-NUMA, CXL
		// CC-NUMA, and Setup #2's remote DDR4 CC-NUMA.
		{Group2a, h.S1, "setup1", "socket0 numa#1", SymbolDDR5OnNode, onSocket(m1, 0, 10), 1, perf.MemoryMode},
		{Group2a, h.S1, "setup1", "socket0 numa#2", SymbolCXLDDR4, onSocket(m1, 0, 10), 2, perf.MemoryMode},
		{Group2a, h.S2, "setup2", "socket0 numa#1", SymbolDDR4OnNode, onSocket(m2, 0, 10), 1, perf.MemoryMode},
		// 2.b — Memory Mode, all cores (close placement as in
		// Figure 9's membind dataflows).
		{Group2b, h.S1, "setup1", "all numa#1", SymbolDDR5OnNode, affinity(m1, numa.Close), 1, perf.MemoryMode},
		{Group2b, h.S1, "setup1", "all numa#2", SymbolCXLDDR4, affinity(m1, numa.Close), 2, perf.MemoryMode},
		{Group2b, h.S2, "setup2", "all numa#0", SymbolDDR4OnNode, affinity(m2, numa.Close), 0, perf.MemoryMode},
		{Group2b, h.S2, "setup2", "all numa#1", SymbolDDR4OnNode, affinity(m2, numa.Close), 1, perf.MemoryMode},
	}
	for _, sp := range specs {
		cores, err := sp.cores()
		if err != nil {
			return nil, err
		}
		s, err := h.sweep(sp.rt, sp.setup, sp.label, sp.symbol, cores, sp.node, op, sp.mode)
		if err != nil {
			return nil, err
		}
		f.Groups[sp.group] = append(f.Groups[sp.group], s)
	}
	return f, nil
}

// AllFigures regenerates Figures 5-8.
func (h *Harness) AllFigures() ([]*Figure, error) {
	var out []*Figure
	for _, n := range []int{5, 6, 7, 8} {
		f, err := h.Figure(n)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// RenderText renders a figure as aligned text tables, one per group.
func (f *Figure) RenderText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s — various STREAM test configurations\n", f.Number, strings.ToUpper(f.Op.String()))
	for _, g := range Groups {
		series := f.Groups[g]
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n(%s) %s\n", g, g.Title())
		fmt.Fprintf(&b, "%8s", "threads")
		for _, s := range series {
			fmt.Fprintf(&b, " %20s", s.Symbol+" "+s.Label)
		}
		b.WriteString("\n")
		maxT := 0
		for _, s := range series {
			if len(s.Threads) > maxT {
				maxT = len(s.Threads)
			}
		}
		for t := 1; t <= maxT; t++ {
			fmt.Fprintf(&b, "%8d", t)
			for _, s := range series {
				if v, ok := s.At(t); ok {
					fmt.Fprintf(&b, " %20.2f", v)
				} else {
					fmt.Fprintf(&b, " %20s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderCSV renders a figure as CSV rows:
// figure,group,setup,label,symbol,threads,gbps.
func (f *Figure) RenderCSV() string {
	var b strings.Builder
	b.WriteString("figure,group,setup,label,symbol,threads,gbps\n")
	for _, g := range Groups {
		for _, s := range f.Groups[g] {
			for i := range s.Threads {
				fmt.Fprintf(&b, "%d,%s,%s,%q,%s,%d,%.3f\n",
					f.Number, g, s.Setup, s.Label, s.Symbol, s.Threads[i], s.GBps[i])
			}
		}
	}
	return b.String()
}
