package streamer

import (
	"strings"
	"testing"

	"cxlpmem/internal/stream"
)

func harness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFigureMapping(t *testing.T) {
	if FigureOps[5] != stream.Scale || FigureOps[6] != stream.Add ||
		FigureOps[7] != stream.Copy || FigureOps[8] != stream.Triad {
		t.Error("figure-to-kernel mapping does not match §4")
	}
}

func TestFigureStructure(t *testing.T) {
	h := harness(t)
	f, err := h.Figure(5)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != stream.Scale || f.Number != 5 {
		t.Error("figure identity")
	}
	// All five groups present with the right series counts.
	wantSeries := map[GroupID]int{
		Group1a: 2, Group1b: 4, Group1c: 4, Group2a: 3, Group2b: 4,
	}
	for g, want := range wantSeries {
		if got := len(f.Groups[g]); got != want {
			t.Errorf("group %s has %d series, want %d", g, got, want)
		}
	}
	// Single-socket groups sweep 1..10, dual-socket 1..20.
	for _, s := range f.Groups[Group1a] {
		if len(s.Threads) != 10 {
			t.Errorf("1a series %q sweeps %d threads, want 10", s.Label, len(s.Threads))
		}
	}
	for _, s := range f.Groups[Group1c] {
		if len(s.Threads) != 20 {
			t.Errorf("1c series %q sweeps %d threads, want 20", s.Label, len(s.Threads))
		}
	}
	if _, err := h.Figure(4); err == nil {
		t.Error("figure 4 accepted")
	}
}

func TestFigureSymbolsMatchLegend(t *testing.T) {
	h := harness(t)
	f, err := h.Figure(7)
	if err != nil {
		t.Fatal(err)
	}
	for g, series := range f.Groups {
		for _, s := range series {
			switch {
			case strings.Contains(s.Label, "#2") && s.Setup == "setup1":
				if s.Symbol != SymbolCXLDDR4 {
					t.Errorf("%s/%s: symbol %s, want × (CXL DDR4)", g, s.Label, s.Symbol)
				}
			case s.Setup == "setup2":
				if s.Symbol != SymbolDDR4OnNode {
					t.Errorf("%s/%s: symbol %s, want ▲ (on-node DDR4)", g, s.Label, s.Symbol)
				}
			default:
				if s.Symbol != SymbolDDR5OnNode {
					t.Errorf("%s/%s: symbol %s, want ● (on-node DDR5)", g, s.Label, s.Symbol)
				}
			}
		}
	}
}

func TestFigureShapeMatchesPaper(t *testing.T) {
	h := harness(t)
	f, err := h.Figure(5) // SCALE
	if err != nil {
		t.Fatal(err)
	}
	// 1.a: both local series saturate in the paper's 20-22 band.
	for _, s := range f.Groups[Group1a] {
		if v := s.Max(); v < 19.5 || v > 22.5 {
			t.Errorf("1a %q max = %.1f, want 20-22", s.Label, v)
		}
	}
	// 1.b: remote DDR5 beats CXL; CXL is roughly half.
	var ddr5, cxl float64
	for _, s := range f.Groups[Group1b] {
		if s.Label == "socket0 pmem#1" {
			ddr5 = s.Max()
		}
		if s.Label == "socket0 pmem#2" {
			cxl = s.Max()
		}
	}
	if !(ddr5 > cxl && cxl > 0.4*ddr5 && cxl < 0.6*ddr5) {
		t.Errorf("1b: ddr5 %.1f vs cxl %.1f not in the ~50%% relation", ddr5, cxl)
	}
	// 1.c: close on pmem0 dips when remote cores join (11+ threads).
	for _, s := range f.Groups[Group1c] {
		if s.Label != "close pmem#0" {
			continue
		}
		at10, _ := s.At(10)
		at14, _ := s.At(14)
		if at14 >= at10 {
			t.Errorf("1c close pmem#0: %.1f@14 should dip below %.1f@10", at14, at10)
		}
	}
	// 2.a: Setup2 remote DDR4 within 5 GB/s of CXL.
	var s2ddr4, s1cxl float64
	for _, s := range f.Groups[Group2a] {
		if s.Setup == "setup2" {
			s2ddr4 = s.Max()
		}
		if s.Label == "socket0 numa#2" {
			s1cxl = s.Max()
		}
	}
	if d := s1cxl - s2ddr4; d < -5 || d > 5 {
		t.Errorf("2a: CXL %.1f vs setup2 DDR4 %.1f gap out of band", s1cxl, s2ddr4)
	}
}

func TestAllFigures(t *testing.T) {
	h := harness(t)
	figs, err := h.AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	seen := map[stream.Op]bool{}
	for _, f := range figs {
		seen[f.Op] = true
	}
	if len(seen) != 4 {
		t.Error("duplicate kernel across figures")
	}
}

func TestRenderText(t *testing.T) {
	h := harness(t)
	f, err := h.Figure(8)
	if err != nil {
		t.Fatal(err)
	}
	txt := f.RenderText()
	for _, want := range []string{"TRIAD", "Class 1.a", "Class 2.b", "pmem#2", "numa#1", "threads"} {
		if !strings.Contains(txt, want) {
			t.Errorf("RenderText missing %q", want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	h := harness(t)
	f, err := h.Figure(6)
	if err != nil {
		t.Fatal(err)
	}
	csv := f.RenderCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "figure,group,setup,label,symbol,threads,gbps" {
		t.Errorf("csv header = %q", lines[0])
	}
	// 2*10 + 4*10 + 4*20 + (2*10+10) + 4*20 data rows.
	want := 20 + 40 + 80 + 30 + 80
	if got := len(lines) - 1; got != want {
		t.Errorf("csv rows = %d, want %d", got, want)
	}
	if !strings.Contains(csv, "6,1b,setup1") {
		t.Error("csv rows malformed")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Threads: []int{1, 2, 3}, GBps: []float64{1, 5, 3}}
	if v, ok := s.At(2); !ok || v != 5 {
		t.Error("At")
	}
	if _, ok := s.At(9); ok {
		t.Error("At missing")
	}
	if s.Max() != 5 {
		t.Error("Max")
	}
	for _, g := range Groups {
		if g.Title() == "" {
			t.Error("empty group title")
		}
	}
	if GroupID("zz").Title() != "zz" {
		t.Error("unknown group title")
	}
}

func TestSummaryClaimsAllPass(t *testing.T) {
	h := harness(t)
	claims, err := h.SummaryClaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 9 {
		t.Fatalf("claims = %d, want 9", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: paper %q, measured %q", c.ID, c.Paper, c.Measured)
		}
	}
	txt := FormatClaims(claims)
	if !strings.Contains(txt, "PASS") || !strings.Contains(txt, "local-saturation") {
		t.Error("FormatClaims output")
	}
}

func TestDCPMMTableShowsCXLWinning(t *testing.T) {
	h := harness(t)
	rows, err := h.DCPMMTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	published, cxl := rows[0], rows[2]
	if published.ReadGBps != 6.6 || published.WriteGBps != 2.3 {
		t.Errorf("published row = %+v", published)
	}
	// §1.4: the CXL module outperforms published DCPMM, especially
	// on writes.
	if cxl.WriteGBps <= published.WriteGBps {
		t.Errorf("CXL write %.1f should beat DCPMM %.1f", cxl.WriteGBps, published.WriteGBps)
	}
	if cxl.ReadGBps <= published.WriteGBps {
		t.Errorf("CXL read %.1f unreasonably low", cxl.ReadGBps)
	}
	txt := FormatDCPMMTable(rows)
	if !strings.Contains(txt, "Optane") || !strings.Contains(txt, "CXL-DDR4") {
		t.Error("table rendering")
	}
}

func TestDataflows(t *testing.T) {
	h := harness(t)
	txt, err := h.Dataflows()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(1a)", "(2b)", "/mnt/pmem2", "upi0", "membind"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Dataflows missing %q:\n%s", want, txt)
		}
	}
}
