package streamer

import (
	"fmt"
	"strings"
)

// ASCII rendering of a figure group: a terminal approximation of the
// paper's scatter plots, using the same ▲/●/× legend symbols.

// RenderPlot draws one group of a figure as an ASCII chart of the given
// plot-area size. Series points use the series symbol; colliding points
// show '*'.
func (f *Figure) RenderPlot(g GroupID, width, height int) string {
	series := f.Groups[g]
	if len(series) == 0 {
		return fmt.Sprintf("(no data for group %s)\n", g)
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	maxY := 0.0
	maxT := 0
	for _, s := range series {
		if v := s.Max(); v > maxY {
			maxY = v
		}
		if len(s.Threads) > maxT {
			maxT = len(s.Threads)
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := make([][]rune, height)
	for y := range grid {
		grid[y] = make([]rune, width)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	for _, s := range series {
		sym := []rune(s.Symbol)[0]
		for i, t := range s.Threads {
			x := (t - 1) * (width - 1) / max(maxT-1, 1)
			y := height - 1 - int(s.GBps[i]/maxY*float64(height-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			if grid[y][x] != ' ' && grid[y][x] != sym {
				grid[y][x] = '*'
			} else {
				grid[y][x] = sym
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d %s — (%s) %s  [y: 0..%.1f GB/s, x: 1..%d threads]\n",
		f.Number, strings.ToUpper(f.Op.String()), g, g.Title(), maxY, maxT)
	for y, row := range grid {
		label := "      "
		if y == 0 {
			label = fmt.Sprintf("%5.1f ", maxY)
		}
		if y == height-1 {
			label = "  0.0 "
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString("      +" + strings.Repeat("-", width) + "\n")
	for _, s := range series {
		fmt.Fprintf(&b, "      %s %s (max %.1f GB/s)\n", s.Symbol, s.Label, s.Max())
	}
	return b.String()
}

// RenderPlots draws every group of the figure.
func (f *Figure) RenderPlots(width, height int) string {
	var b strings.Builder
	for _, g := range Groups {
		b.WriteString(f.RenderPlot(g, width, height))
		b.WriteString("\n")
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
