package streamer

import (
	"fmt"
	"strings"

	"cxlpmem/internal/core"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/topology"
)

// Claim is one of the paper's quantitative statements checked against
// the regenerated data. EXPERIMENTS.md is produced from these.
type Claim struct {
	ID       string
	Paper    string
	Measured string
	Pass     bool
}

// SummaryClaims evaluates every §4 headline claim on the Copy kernel
// (the claims are stated across all operations; Copy is representative
// and the per-op factors are within 3%).
func (h *Harness) SummaryClaims() ([]Claim, error) {
	e1, e2 := h.S1.Engine, h.S2.Engine
	m1, m2 := h.S1.Machine, h.S2.Machine
	mix := stream.Copy.Mix()

	s0, err := numa.PlaceOnSocket(m1, 0, 10)
	if err != nil {
		return nil, err
	}
	rate := func(e *perf.Engine, cores []topology.Core, node topology.NodeID, mode perf.AccessMode) (float64, error) {
		r, err := e.StreamBandwidth(cores, node, mix, mode)
		if err != nil {
			return 0, err
		}
		return r.Total.GBps(), nil
	}

	localAD, err := rate(e1, s0, 0, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	remoteAD, err := rate(e1, s0, 1, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	cxlAD, err := rate(e1, s0, 2, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	remoteMM, err := rate(e1, s0, 1, perf.MemoryMode)
	if err != nil {
		return nil, err
	}
	cxlMM, err := rate(e1, s0, 2, perf.MemoryMode)
	if err != nil {
		return nil, err
	}
	s20, err := numa.PlaceOnSocket(m2, 0, 10)
	if err != nil {
		return nil, err
	}
	ddr4MM, err := rate(e2, s20, 1, perf.MemoryMode)
	if err != nil {
		return nil, err
	}

	var claims []Claim
	add := func(id, paper, measured string, pass bool) {
		claims = append(claims, Claim{ID: id, Paper: paper, Measured: measured, Pass: pass})
	}

	add("local-saturation",
		"Direct access to local DDR5 using PMDK saturates at 20-22 GB/s",
		fmt.Sprintf("%.1f GB/s", localAD),
		localAD >= 20 && localAD <= 22)

	drop := 100 * (1 - remoteAD/localAD)
	add("remote-drop-30",
		"Remote App-Direct access (alternate socket DDR5) decreases ~30%",
		fmt.Sprintf("%.0f%% (%.1f GB/s)", drop, remoteAD),
		drop >= 22 && drop <= 38)

	cxlDrop := 100 * (1 - cxlAD/remoteAD)
	add("cxl-drop-50",
		"App-Direct to CXL DDR4 is ~50% below the emulated PMem on DDR5",
		fmt.Sprintf("%.0f%% (%.1f GB/s)", cxlDrop, cxlAD),
		cxlDrop >= 40 && cxlDrop <= 60)

	fabric := remoteAD/1.5 - cxlAD
	add("fabric-loss-2-3",
		"About 2-3 GB/s bandwidth loss is attributable to the CXL fabric",
		fmt.Sprintf("%.1f GB/s", fabric),
		fabric >= 1.5 && fabric <= 3.5)

	pmdk := 100 * (1 - cxlAD/cxlMM)
	add("pmdk-overhead",
		"PMDK overheads over CC-NUMA are 10%-15%",
		fmt.Sprintf("%.1f%%", pmdk),
		pmdk >= 10 && pmdk <= 15)

	factor := remoteMM / cxlMM
	add("ddr5-ddr4-factor-2",
		"The gap between CC-NUMA DDR5 and DDR4 stands at a factor of two",
		fmt.Sprintf("%.2fx", factor),
		factor >= 1.7 && factor <= 2.5)

	gap := cxlMM - ddr4MM
	add("ddr4-cxl-comparable",
		"DDR4 CC-NUMA on the remote socket and CXL yield comparable figures (gaps up to 2-5 GB/s)",
		fmt.Sprintf("%.1f GB/s gap (CXL %.1f vs remote DDR4 %.1f)", gap, cxlMM, ddr4MM),
		gap >= -5 && gap <= 5)

	// Low-thread advantage to CXL (larger SPR caches).
	one1, err := rate(e1, s0[:1], 2, perf.MemoryMode)
	if err != nil {
		return nil, err
	}
	one2, err := rate(e2, s20[:1], 1, perf.MemoryMode)
	if err != nil {
		return nil, err
	}
	add("cxl-low-thread-advantage",
		"Following a small number of threads, a slight advantage for accessing CXL memory",
		fmt.Sprintf("1 thread: CXL %.2f vs Setup2 DDR4 %.2f GB/s", one1, one2),
		one1 > one2)

	// Close/spread convergence at full core count.
	closeC, err := numa.PlaceThreads(m1, 20, numa.Close)
	if err != nil {
		return nil, err
	}
	spreadC, err := numa.PlaceThreads(m1, 20, numa.Spread)
	if err != nil {
		return nil, err
	}
	cc, err := rate(e1, closeC, 2, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	sc, err := rate(e1, spreadC, 2, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	diff := cc - sc
	if diff < 0 {
		diff = -diff
	}
	add("affinity-convergence",
		"With the entire core count the results converge for on-node DDR5 and remote CXL memory",
		fmt.Sprintf("close %.1f vs spread %.1f GB/s on CXL", cc, sc),
		diff < 0.5)

	return claims, nil
}

// DCPMMRow is one line of the DCPMM comparison (§1.4: "we achieve much
// better bandwidth than previously published Optane DCPMM ones").
type DCPMMRow struct {
	Device    string
	ReadGBps  float64
	WriteGBps float64
}

// DCPMMTable compares the CXL prototype against the published single-
// module DCPMM figures, both via the model at full single-socket
// thread count, plus the raw published constants.
func (h *Harness) DCPMMTable() ([]DCPMMRow, error) {
	rows := []DCPMMRow{{
		Device:    "Optane DCPMM (published, Izraelevitz et al.)",
		ReadGBps:  memdev.DCPMMReadPeakGBps,
		WriteGBps: memdev.DCPMMWritePeakGBps,
	}}

	dc, err := core.NewDCPMMReference()
	if err != nil {
		return nil, err
	}
	cores := dc.Machine.CoresOn(0)
	rd, err := dc.Engine.StreamBandwidth(cores, 1, perf.Mix{ReadFrac: 1}, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	wr, err := dc.Engine.StreamBandwidth(cores, 1, perf.Mix{ReadFrac: 0}, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	rows = append(rows, DCPMMRow{
		Device:    "Optane DCPMM (modelled, App-Direct, 10 threads)",
		ReadGBps:  rd.Total.GBps(),
		WriteGBps: wr.Total.GBps(),
	})

	s0, err := numa.PlaceOnSocket(h.S1.Machine, 0, 10)
	if err != nil {
		return nil, err
	}
	crd, err := h.S1.Engine.StreamBandwidth(s0, 2, perf.Mix{ReadFrac: 1}, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	cwr, err := h.S1.Engine.StreamBandwidth(s0, 2, perf.Mix{ReadFrac: 0}, perf.AppDirect)
	if err != nil {
		return nil, err
	}
	rows = append(rows, DCPMMRow{
		Device:    "CXL-DDR4 prototype (modelled, App-Direct, 10 threads)",
		ReadGBps:  crd.Total.GBps(),
		WriteGBps: cwr.Total.GBps(),
	})
	return rows, nil
}

// FormatDCPMMTable renders the comparison.
func FormatDCPMMTable(rows []DCPMMRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-50s %12s %12s\n", "Device", "Read GB/s", "Write GB/s")
	b.WriteString(strings.Repeat("-", 76) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-50s %12.2f %12.2f\n", r.Device, r.ReadGBps, r.WriteGBps)
	}
	return b.String()
}

// FormatClaims renders the claim checklist.
func FormatClaims(claims []Claim) string {
	var b strings.Builder
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-26s paper: %s\n%31smeasured: %s\n", status, c.ID, c.Paper, "", c.Measured)
	}
	return b.String()
}

// Dataflows renders the Figure 9 descriptions: for every group, the
// path every participating core class takes to the target memory.
func (h *Harness) Dataflows() (string, error) {
	var b strings.Builder
	b.WriteString("Data flows per test group (cf. paper Figure 9):\n")
	type flow struct {
		group  GroupID
		rt     *core.Runtime
		core   topology.Core
		node   topology.NodeID
		detail string
	}
	m1 := h.S1.Machine
	m2 := h.S2.Machine
	c0, err := m1.Core(0)
	if err != nil {
		return "", err
	}
	c10, err := m1.Core(10)
	if err != nil {
		return "", err
	}
	d0, err := m2.Core(0)
	if err != nil {
		return "", err
	}
	flows := []flow{
		{Group1a, h.S1, c0, 0, "socket0 cores → /mnt/pmem0"},
		{Group1b, h.S1, c0, 1, "socket0 cores → /mnt/pmem1"},
		{Group1b, h.S1, c0, 2, "socket0 cores → /mnt/pmem2 (CXL)"},
		{Group1c, h.S1, c10, 2, "socket1 cores → /mnt/pmem2 (CXL)"},
		{Group2a, h.S1, c0, 2, "socket0 cores → numactl --membind=2"},
		{Group2a, h.S2, d0, 1, "setup2 socket0 cores → numactl --membind=1"},
		{Group2b, h.S1, c10, 1, "socket1 cores → numactl --membind=1"},
	}
	for _, fl := range flows {
		p, err := fl.rt.Machine.Path(fl.core, fl.node)
		if err != nil {
			return "", err
		}
		lat, err := fl.rt.Machine.AccessLatency(fl.core, fl.node)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  (%s) %-44s path: %-18s latency: %s\n", fl.group, fl.detail, p, lat)
	}
	return b.String(), nil
}
