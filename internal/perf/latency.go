package perf

import (
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// Loaded latency. The unloaded numbers in topology (95/205/345 ns) hold
// only while the target device has headroom; as a stream approaches the
// device's sustainable rate, queueing delay grows. We model it with the
// standard M/M/1-shaped inflation L = L0 / (1 - ρ) with utilisation
// clamped below 1 — the same curve memory-latency checkers (e.g. Intel
// MLC) produce, and the reason Memory-Mode expansion slows everything
// down when over-committed.

// maxUtilisation clamps ρ so the model stays finite; beyond ~95% a real
// memory controller's queues dominate and latency explodes.
const maxUtilisation = 0.95

// LoadedLatency returns the effective access latency from core c to
// node id when the node is already carrying `offered` of traffic with
// the given mix.
func (e *Engine) LoadedLatency(c topology.Core, id topology.NodeID, offered units.Bandwidth, mix Mix) (units.Latency, error) {
	base, err := e.M.AccessLatency(c, id)
	if err != nil {
		return 0, err
	}
	node, err := e.M.Node(id)
	if err != nil {
		return 0, err
	}
	cap := node.EffectiveCap(mix.ReadFrac)
	if cap <= 0 {
		return base, nil
	}
	rho := float64(offered) / float64(cap)
	if rho < 0 {
		rho = 0
	}
	if rho > maxUtilisation {
		rho = maxUtilisation
	}
	return units.Nanoseconds(base.Ns() / (1 - rho)), nil
}

// LatencyBandwidthCurve sweeps offered load from 0 to the node's cap in
// `points` steps, returning (offered GB/s, loaded ns) pairs — the
// classic loaded-latency plot for one core/node pair.
type LatencyPoint struct {
	Offered units.Bandwidth
	Latency units.Latency
}

// LatencyBandwidthCurve computes the loaded-latency curve.
func (e *Engine) LatencyBandwidthCurve(c topology.Core, id topology.NodeID, mix Mix, points int) ([]LatencyPoint, error) {
	if points < 2 {
		points = 2
	}
	node, err := e.M.Node(id)
	if err != nil {
		return nil, err
	}
	cap := node.EffectiveCap(mix.ReadFrac)
	out := make([]LatencyPoint, 0, points)
	for i := 0; i < points; i++ {
		offered := units.Bandwidth(float64(cap) * float64(i) / float64(points-1))
		lat, err := e.LoadedLatency(c, id, offered, mix)
		if err != nil {
			return nil, err
		}
		out = append(out, LatencyPoint{Offered: offered, Latency: lat})
	}
	return out, nil
}
