package perf

import (
	"testing"

	"cxlpmem/internal/units"
)

func TestLoadedLatencyInflation(t *testing.T) {
	e := engine1(t)
	c0, err := e.M.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	// Unloaded: matches the topology latency.
	l0, err := e.LoadedLatency(c0, 0, 0, mixCopy)
	if err != nil {
		t.Fatal(err)
	}
	if l0.Ns() != 95 {
		t.Errorf("unloaded = %v, want 95ns", l0)
	}
	// Half load doubles the latency (1/(1-0.5)).
	node, _ := e.M.Node(0)
	half := units.Bandwidth(float64(node.EffectiveCap(0.5)) / 2)
	lHalf, err := e.LoadedLatency(c0, 0, half, mixCopy)
	if err != nil {
		t.Fatal(err)
	}
	if got := lHalf.Ns(); got < 189 || got > 191 {
		t.Errorf("half-load = %v, want ~190ns", lHalf)
	}
	// Beyond saturation the clamp bounds the blow-up.
	lOver, err := e.LoadedLatency(c0, 0, node.EffectiveCap(0.5)*3, mixCopy)
	if err != nil {
		t.Fatal(err)
	}
	want := 95.0 / (1 - 0.95)
	if got := lOver.Ns(); got < want*0.99 || got > want*1.01 {
		t.Errorf("overloaded = %v, want clamp at %vns", lOver, want)
	}
	// Negative offered load treated as zero.
	lNeg, err := e.LoadedLatency(c0, 0, units.Bandwidth(-1), mixCopy)
	if err != nil || lNeg != l0 {
		t.Errorf("negative load = %v", lNeg)
	}
	// Missing node errors.
	if _, err := e.LoadedLatency(c0, 9, 0, mixCopy); err == nil {
		t.Error("missing node accepted")
	}
}

func TestLatencyBandwidthCurve(t *testing.T) {
	e := engine1(t)
	c0, _ := e.M.Core(0)
	curve, err := e.LatencyBandwidthCurve(c0, 2, mixCopy, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 10 {
		t.Fatalf("points = %d", len(curve))
	}
	// Monotone: latency never decreases as offered load grows.
	for i := 1; i < len(curve); i++ {
		if curve[i].Latency < curve[i-1].Latency {
			t.Errorf("latency fell at point %d", i)
		}
		if curve[i].Offered <= curve[i-1].Offered {
			t.Errorf("offered not increasing at point %d", i)
		}
	}
	// CXL knee: the unloaded point is the 345 ns fabric latency.
	if got := curve[0].Latency.Ns(); got != 345 {
		t.Errorf("CXL unloaded = %v, want 345ns", got)
	}
	// Tiny point counts clamp to 2.
	c2, err := e.LatencyBandwidthCurve(c0, 0, mixCopy, 1)
	if err != nil || len(c2) != 2 {
		t.Errorf("clamped curve = %d points, %v", len(c2), err)
	}
	if _, err := e.LatencyBandwidthCurve(c0, 9, mixCopy, 4); err == nil {
		t.Error("missing node accepted")
	}
}
