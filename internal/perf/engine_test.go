package perf

import (
	"testing"
	"testing/quick"

	"cxlpmem/internal/numa"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// mixCopy is STREAM Copy/Scale traffic: one read, one write.
var mixCopy = Mix{ReadFrac: 0.5}

// mixTriad is STREAM Add/Triad traffic: two reads, one write.
var mixTriad = Mix{ReadFrac: 2.0 / 3.0}

func engine1(t *testing.T) *Engine {
	t.Helper()
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

func engine2(t *testing.T) *Engine {
	t.Helper()
	m, err := topology.Setup2()
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

func socketCores(t *testing.T, e *Engine, s topology.SocketID, n int) []topology.Core {
	t.Helper()
	cores, err := numa.PlaceOnSocket(e.M, s, n)
	if err != nil {
		t.Fatal(err)
	}
	return cores
}

func run(t *testing.T, e *Engine, cores []topology.Core, node topology.NodeID, mix Mix, mode AccessMode) Result {
	t.Helper()
	r, err := e.StreamBandwidth(cores, node, mix, mode)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// --- Paper claim: Class 1.a local DDR5 App-Direct saturates 20-22 GB/s.
func TestClaimLocalDDR5AppDirectSaturation(t *testing.T) {
	e := engine1(t)
	r := run(t, e, socketCores(t, e, 0, 10), 0, mixCopy, AppDirect)
	got := r.Total.GBps()
	if got < 20 || got > 22 {
		t.Errorf("local DDR5 App-Direct at 10 threads = %.2f GB/s, want 20-22 (paper §4 1.a)", got)
	}
}

// --- Paper claim: Class 1.b remote-socket DDR5 App-Direct loses ~30%.
func TestClaimRemoteSocketDrop(t *testing.T) {
	e := engine1(t)
	local := run(t, e, socketCores(t, e, 0, 10), 0, mixCopy, AppDirect).Total.GBps()
	remote := run(t, e, socketCores(t, e, 0, 10), 1, mixCopy, AppDirect).Total.GBps()
	drop := 1 - remote/local
	if drop < 0.22 || drop > 0.38 {
		t.Errorf("remote drop = %.0f%%, want ~30%% (local %.1f, remote %.1f)", drop*100, local, remote)
	}
	if remote < 14 || remote > 16.5 {
		t.Errorf("remote DDR5 App-Direct = %.2f GB/s, want ~15 (paper §4 1.b)", remote)
	}
}

// --- Paper claim: Class 1.b CXL DDR4 App-Direct is ~50% below remote
// DDR5, with 2-3 GB/s attributable to the CXL fabric.
func TestClaimCXLDrop(t *testing.T) {
	e := engine1(t)
	remoteDDR5 := run(t, e, socketCores(t, e, 0, 10), 1, mixCopy, AppDirect).Total.GBps()
	cxl := run(t, e, socketCores(t, e, 0, 10), 2, mixCopy, AppDirect).Total.GBps()
	ratio := cxl / remoteDDR5
	if ratio < 0.40 || ratio > 0.60 {
		t.Errorf("CXL/remote-DDR5 = %.2f, want ~0.5 (remote %.1f, cxl %.1f)", ratio, remoteDDR5, cxl)
	}
	// DDR5 has ~50% more bandwidth than DDR4, so a hypothetical
	// remote DDR4 would reach remoteDDR5/1.5; the residual gap to the
	// measured CXL figure is the fabric loss.
	hypotheticalDDR4 := remoteDDR5 / 1.5
	fabricLoss := hypotheticalDDR4 - cxl
	if fabricLoss < 1.5 || fabricLoss > 3.5 {
		t.Errorf("fabric loss = %.2f GB/s, want 2-3 (paper §4 1.b)", fabricLoss)
	}
}

// --- Paper claim: Class 2.a PMDK overhead is 10-15% over CC-NUMA.
func TestClaimPMDKOverhead(t *testing.T) {
	e := engine1(t)
	for _, node := range []topology.NodeID{1, 2} {
		mm := run(t, e, socketCores(t, e, 0, 10), node, mixCopy, MemoryMode).Total.GBps()
		ad := run(t, e, socketCores(t, e, 0, 10), node, mixCopy, AppDirect).Total.GBps()
		over := 1 - ad/mm
		if over < 0.10 || over > 0.15 {
			t.Errorf("node %d PMDK overhead = %.1f%%, want 10-15%%", node, over*100)
		}
	}
}

// --- Paper claim: Class 2.a DDR5 CC-NUMA holds a ~2x advantage over
// DDR4 (CXL-attached).
func TestClaimDDR5vsDDR4FactorTwo(t *testing.T) {
	e := engine1(t)
	ddr5 := run(t, e, socketCores(t, e, 0, 10), 1, mixCopy, MemoryMode).Total.GBps()
	cxl := run(t, e, socketCores(t, e, 0, 10), 2, mixCopy, MemoryMode).Total.GBps()
	ratio := ddr5 / cxl
	if ratio < 1.7 || ratio > 2.5 {
		t.Errorf("DDR5/DDR4-CXL CC-NUMA ratio = %.2f, want ~2 (paper §4 2.a)", ratio)
	}
}

// --- Paper claim: Class 2.a remote DDR4 (Setup #2) is comparable to
// CXL DDR4 within 2-5 GB/s, with a low-thread-count advantage to CXL
// from SPR's larger caches.
func TestClaimSetup2RemoteDDR4ComparableToCXL(t *testing.T) {
	e1 := engine1(t)
	e2 := engine2(t)
	cxl10 := run(t, e1, socketCores(t, e1, 0, 10), 2, mixCopy, MemoryMode).Total.GBps()
	ddr4r10 := run(t, e2, socketCores(t, e2, 0, 10), 1, mixCopy, MemoryMode).Total.GBps()
	gap := cxl10 - ddr4r10
	if gap < 0 || gap > 5 {
		t.Errorf("CXL %.1f vs Setup2 remote DDR4 %.1f: gap %.1f, want 0-5 GB/s", cxl10, ddr4r10, gap)
	}
	// Low thread count: CXL per-thread beats the old platform.
	cxl1 := run(t, e1, socketCores(t, e1, 0, 1), 2, mixCopy, MemoryMode).Total.GBps()
	ddr4r1 := run(t, e2, socketCores(t, e2, 0, 1), 1, mixCopy, MemoryMode).Total.GBps()
	if cxl1 <= ddr4r1 {
		t.Errorf("1 thread: CXL %.2f should exceed Setup2 remote DDR4 %.2f (SPR cache advantage)", cxl1, ddr4r1)
	}
}

// --- Paper claim: Class 1.c close affinity — remote threads past the
// first socket reduce the reported bandwidth; spread sits between; both
// converge at the full core count.
func TestClaimCloseSpreadAffinity(t *testing.T) {
	e := engine1(t)
	closeCores, err := numa.PlaceThreads(e.M, 20, numa.Close)
	if err != nil {
		t.Fatal(err)
	}
	spreadCores, err := numa.PlaceThreads(e.M, 20, numa.Spread)
	if err != nil {
		t.Fatal(err)
	}
	closeSweep, err := e.ThreadSweep(closeCores, 0, mixCopy, AppDirect)
	if err != nil {
		t.Fatal(err)
	}
	spreadSweep, err := e.ThreadSweep(spreadCores, 0, mixCopy, AppDirect)
	if err != nil {
		t.Fatal(err)
	}
	at := func(s []units.Bandwidth, n int) float64 { return s[n-1].GBps() }

	// Close at 10 threads: all local, saturated.
	if v := at(closeSweep, 10); v < 19 {
		t.Errorf("close@10 = %.1f, want saturated local", v)
	}
	// Adding remote threads (11th+) hurts under close.
	if at(closeSweep, 12) >= at(closeSweep, 10) {
		t.Errorf("close@12 (%.1f) should be below close@10 (%.1f): remote accesses negatively impact",
			at(closeSweep, 12), at(closeSweep, 10))
	}
	// Under close, adding a local core helps early on.
	if at(closeSweep, 2) <= at(closeSweep, 1) {
		t.Error("close@2 should exceed close@1: local accesses contribute positively")
	}
	// Spread at low counts sits between all-local close and the
	// remote-only rate: below close (which is all-local there).
	if at(spreadSweep, 4) >= at(closeSweep, 4) {
		t.Errorf("spread@4 (%.1f) should be below close@4 (%.1f): alternating accesses average down",
			at(spreadSweep, 4), at(closeSweep, 4))
	}
	// Convergence at full core count.
	c20, s20 := at(closeSweep, 20), at(spreadSweep, 20)
	diff := c20 - s20
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.5 {
		t.Errorf("close@20 (%.1f) and spread@20 (%.1f) should converge", c20, s20)
	}
}

// --- Paper claim: Class 1.c CXL target — both affinities converge for
// CXL too, at ~50% below on-node DDR5.
func TestClaimAffinityCXLConvergence(t *testing.T) {
	e := engine1(t)
	closeCores, _ := numa.PlaceThreads(e.M, 20, numa.Close)
	spreadCores, _ := numa.PlaceThreads(e.M, 20, numa.Spread)
	c := run(t, e, closeCores, 2, mixCopy, AppDirect).Total.GBps()
	s := run(t, e, spreadCores, 2, mixCopy, AppDirect).Total.GBps()
	if d := c - s; d > 0.5 || d < -0.5 {
		t.Errorf("CXL close@20 %.1f vs spread@20 %.1f should converge", c, s)
	}
	ddr5 := run(t, e, closeCores, 0, mixCopy, AppDirect).Total.GBps()
	if ratio := c / ddr5; ratio > 0.65 {
		t.Errorf("CXL@20 / DDR5@20 = %.2f, want well below 1 (paper: ~50%% degradation)", ratio)
	}
}

// --- Engine mechanics ---------------------------------------------------

func TestThreadDemandOrdering(t *testing.T) {
	e := engine1(t)
	c0, _ := e.M.Core(0)
	local, err := e.ThreadDemand(c0, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := e.ThreadDemand(c0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := e.ThreadDemand(c0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(local > remote && remote > cxl) {
		t.Errorf("demand ordering broken: local %.1f remote %.1f cxl %.1f GB/s",
			local.GBps(), remote.GBps(), cxl.GBps())
	}
	// Little's law check: MLP * 64B / 95ns.
	want := 12.0 * 64 / 95e-9 / 1e9
	if got := local.GBps(); got < want*0.99 || got > want*1.01 {
		t.Errorf("local demand = %.2f GB/s, want %.2f", got, want)
	}
	if _, err := e.ThreadDemand(c0, 9); err == nil {
		t.Error("missing node accepted")
	}
}

func TestSingleThreadUnconstrained(t *testing.T) {
	e := engine1(t)
	cores := socketCores(t, e, 0, 1)
	r := run(t, e, cores, 0, mixCopy, MemoryMode)
	d, _ := e.ThreadDemand(cores[0], 0)
	if r.Total != d {
		t.Errorf("1-thread total = %v, want raw demand %v", r.Total, d)
	}
	if r.Bottleneck != "demand" {
		t.Errorf("bottleneck = %q, want demand", r.Bottleneck)
	}
}

func TestBottleneckIdentification(t *testing.T) {
	e := engine1(t)
	// 10 local threads saturate the DDR5 device.
	r := run(t, e, socketCores(t, e, 0, 10), 0, mixCopy, MemoryMode)
	if r.Bottleneck != "device" {
		t.Errorf("local saturated bottleneck = %q, want device", r.Bottleneck)
	}
	// 10 remote threads saturate UPI.
	r = run(t, e, socketCores(t, e, 0, 10), 1, mixCopy, MemoryMode)
	if r.Bottleneck != "upi0" {
		t.Errorf("remote bottleneck = %q, want upi0", r.Bottleneck)
	}
}

func TestAllocationsRespectConstraints(t *testing.T) {
	e := engine1(t)
	closeCores, _ := numa.PlaceThreads(e.M, 20, numa.Close)
	r := run(t, e, closeCores, 0, mixCopy, MemoryMode)
	var sum, upiSum float64
	for _, f := range r.Flows {
		if f.Alloc > f.Demand {
			t.Errorf("core %d alloc %v exceeds demand %v", f.Core.ID, f.Alloc, f.Demand)
		}
		sum += float64(f.Alloc)
		if len(f.Path.Links) > 0 {
			upiSum += float64(f.Alloc)
		}
	}
	if sum > float64(r.DeviceCap)*1.0001 {
		t.Errorf("allocations %.2f exceed device cap %.2f", sum/1e9, r.DeviceCap.GBps())
	}
	if upiSum > float64(e.M.UPI.EffectiveCap())*1.0001 {
		t.Errorf("UPI flows %.2f exceed link cap", upiSum/1e9)
	}
}

// Property: raising the thread count on one socket toward one target
// never decreases the total (single-class flows have no stragglers).
func TestMonotoneSingleSocketProperty(t *testing.T) {
	e := engine1(t)
	f := func(nRaw uint8, nodeRaw uint8) bool {
		n := int(nRaw%9) + 1 // 1..9 so n+1 is valid
		node := topology.NodeID(nodeRaw % 3)
		a := run(t, e, socketCores(t, e, 0, n), node, mixCopy, MemoryMode).Total
		b := run(t, e, socketCores(t, e, 0, n+1), node, mixCopy, MemoryMode).Total
		return b >= a-units.Bandwidth(1) // tolerate float dust
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMixFactorAndAsymmetricMedia(t *testing.T) {
	// On the DCPMM reference, write-heavy mixes are much slower.
	m, err := topology.DCPMMReference()
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	cores, err := numa.PlaceOnSocket(m, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	readHeavy := run(t, e, cores, 1, Mix{ReadFrac: 1}, MemoryMode).Total.GBps()
	writeHeavy := run(t, e, cores, 1, Mix{ReadFrac: 0}, MemoryMode).Total.GBps()
	if readHeavy < 6.0 || readHeavy > 6.7 {
		t.Errorf("DCPMM read = %.2f GB/s, want ~6.6 (published)", readHeavy)
	}
	if writeHeavy < 2.0 || writeHeavy > 2.4 {
		t.Errorf("DCPMM write = %.2f GB/s, want ~2.3 (published)", writeHeavy)
	}
	// Kernel factor applies multiplicatively.
	base := run(t, e, cores, 0, Mix{ReadFrac: 0.5}, MemoryMode).Total
	boosted := run(t, e, cores, 0, Mix{ReadFrac: 0.5, Factor: 1.05}, MemoryMode).Total
	ratio := float64(boosted) / float64(base)
	if ratio < 1.049 || ratio > 1.051 {
		t.Errorf("factor ratio = %v, want 1.05", ratio)
	}
}

func TestStreamBandwidthValidation(t *testing.T) {
	e := engine1(t)
	if _, err := e.StreamBandwidth(nil, 0, mixCopy, MemoryMode); err == nil {
		t.Error("no cores accepted")
	}
	cores := socketCores(t, e, 0, 2)
	if _, err := e.StreamBandwidth(cores, 9, mixCopy, MemoryMode); err == nil {
		t.Error("missing node accepted")
	}
}

func TestThreadSweepLengthAndShape(t *testing.T) {
	e := engine1(t)
	cores := socketCores(t, e, 0, 10)
	sweep, err := e.ThreadSweep(cores, 0, mixCopy, MemoryMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 10 {
		t.Fatalf("sweep length = %d", len(sweep))
	}
	// Rising then flat: the last value is the max.
	last := sweep[9]
	for i, v := range sweep {
		if v > last+units.Bandwidth(1) {
			t.Errorf("sweep[%d] = %v exceeds saturated value %v", i, v, last)
		}
	}
	if sweep[0] >= sweep[4] {
		t.Error("sweep should rise before saturating")
	}
}

func TestAccessModeString(t *testing.T) {
	if MemoryMode.String() != "memory-mode" || AppDirect.String() != "app-direct" {
		t.Error("mode strings")
	}
}

// --- Interleave scaling: an N-way-striped CXL window multiplies the
// device-side and fabric caps by N, so modelled STREAM bandwidth climbs
// with the way count until per-thread demand (Little's law over the
// unchanged access latency) becomes the binding constraint — the same
// saturation shape the paper's §2.2 bandwidth-lever discussion implies.
func TestInterleaveScalingCurve(t *testing.T) {
	rate := func(ways int) (Result, units.Bandwidth) {
		m, _, err := topology.Setup1(topology.Setup1Options{InterleaveWays: ways})
		if err != nil {
			t.Fatal(err)
		}
		if n2, err := m.Node(2); err == nil && n2.Stripe != nil {
			t.Cleanup(n2.Stripe.Close)
		}
		e := New(m)
		cores := socketCores(t, e, 0, 10)
		r := run(t, e, cores, 2, mixCopy, MemoryMode)
		return r, r.Total
	}
	_, w1 := rate(1)
	_, w2 := rate(2)
	r4, w4 := rate(4)
	_, w8 := rate(8)
	if !(w1 < w2 && w2 < w4 && w4 <= w8) {
		t.Fatalf("scaling not monotone: %v / %v / %v / %v", w1, w2, w4, w8)
	}
	// 2-way doubles an IP-slice-bound window almost exactly.
	if ratio := float64(w2) / float64(w1); ratio < 1.95 || ratio > 2.05 {
		t.Errorf("2-way ratio = %.2f, want ~2.0", ratio)
	}
	// 4-way runs into per-thread demand (10 threads × MLP-limited
	// stream), so the gain is real but sub-linear.
	if ratio := float64(w4) / float64(w1); ratio < 2.5 {
		t.Errorf("4-way ratio = %.2f, want >= 2.5", ratio)
	}
	if r4.Bottleneck == "device" && float64(w4) < 0.99*float64(r4.DeviceCap) {
		t.Errorf("4-way claims device bottleneck below the cap: %v < %v", w4, r4.DeviceCap)
	}
	// Past saturation, more ways change nothing: latency, not
	// bandwidth, is now the wall — exactly why the ablations stop at 8.
	if ratio := float64(w8) / float64(w4); ratio > 1.35 {
		t.Errorf("8-way/4-way ratio = %.2f: expected demand saturation", ratio)
	}
	// The latency story is unchanged by striping: leg fan-out does not
	// shorten a single access.
	m1, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	m4, _, err := topology.Setup1(topology.Setup1Options{InterleaveWays: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n2, err := m4.Node(2); err == nil && n2.Stripe != nil {
		t.Cleanup(n2.Stripe.Close)
	}
	c0, _ := m1.Core(0)
	l1, err := m1.AccessLatency(c0, 2)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := m4.AccessLatency(c0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l4 {
		t.Errorf("striping changed access latency: %v -> %v", l1, l4)
	}
}
