// Package perf is the analytic bandwidth engine that stands in for the
// paper's wall-clock measurements. Given a set of threads (cores), a
// target NUMA node and a traffic mix, it predicts the STREAM-reported
// bandwidth from first principles:
//
//  1. Per-thread demand by Little's law: a core sustaining MLP
//     outstanding 64-byte lines against an access latency L streams at
//     MLP·64B/L. Latency is media idle latency plus fabric latency, so
//     remote-socket and CXL threads individually demand less — the root
//     cause of the paper's distance-ordered curves.
//  2. Shared-resource contention: every fabric link and the target
//     device cap throughput. Allocation under contention is
//     proportional to demand (memory controllers serve in proportion to
//     arriving request streams), applied iteratively until all
//     constraints hold.
//  3. STREAM semantics: with static work partitioning the reported rate
//     is totalBytes / slowestThreadTime = N × min_i(alloc_i). This is
//     what produces the §4 Class 1.c effect — "adding remote accesses
//     of compute cores to the workload negatively impacts the
//     bandwidth, whereas adding local accesses contributes positively"
//     — and the convergence of close and spread at full core count.
//  4. App-Direct runs pay the PMDK overhead factor (§4 Class 2.a: "PMDK
//     overheads over CC-NUMA are 10%-15%").
package perf

import (
	"fmt"
	"math"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// PMDKFactor is the App-Direct bandwidth multiplier: libpmemobj's
// allocation metadata, object translation and flush bookkeeping cost
// 10-15% over raw CC-NUMA access (§4 Class 2.a); we sit at 12%.
const PMDKFactor = 0.88

// Mix describes a traffic mixture.
type Mix struct {
	// ReadFrac is the fraction of traffic that is reads, in [0,1].
	// STREAM Copy/Scale move one read and one write per element
	// (0.5); Add/Triad move two reads and one write (2/3).
	ReadFrac float64
	// Factor is a kernel-specific derate/boost applied to the final
	// rate (read-modify-write avoidance, FMA pipelining). 0 means 1.0.
	Factor float64
}

func (m Mix) factor() float64 {
	if m.Factor == 0 {
		return 1.0
	}
	return m.Factor
}

// AccessMode selects the paper's two PMem operating modes.
type AccessMode int

const (
	// MemoryMode is plain cache-coherent NUMA access (Class 2).
	MemoryMode AccessMode = iota
	// AppDirect is PMDK-mediated persistent access (Class 1).
	AppDirect
)

func (m AccessMode) String() string {
	if m == AppDirect {
		return "app-direct"
	}
	return "memory-mode"
}

// Engine computes bandwidth predictions over one machine.
type Engine struct {
	M *topology.Machine
}

// New builds an engine.
func New(m *topology.Machine) *Engine { return &Engine{M: m} }

// ThreadDemand is the unloaded per-thread streaming bandwidth of core c
// against node id (Little's law).
func (e *Engine) ThreadDemand(c topology.Core, id topology.NodeID) (units.Bandwidth, error) {
	lat, err := e.M.AccessLatency(c, id)
	if err != nil {
		return 0, err
	}
	s, err := e.M.Socket(c.Socket)
	if err != nil {
		return 0, err
	}
	if lat <= 0 {
		return 0, fmt.Errorf("perf: non-positive latency for core %d -> node %d", c.ID, id)
	}
	bytesPerSec := float64(s.Model.MLP) * float64(units.CacheLine) / (lat.Duration().Seconds())
	return units.Bandwidth(bytesPerSec), nil
}

// Flow is one thread's traffic.
type Flow struct {
	Core   topology.Core
	Demand units.Bandwidth
	Alloc  units.Bandwidth
	Path   interconnect.Path
}

// Result is a bandwidth prediction.
type Result struct {
	// Flows carry per-thread demands and allocations.
	Flows []Flow
	// Total is the STREAM-reported rate: threads × slowest allocation,
	// after mode and kernel factors.
	Total units.Bandwidth
	// DeviceCap is the device-side bound used.
	DeviceCap units.Bandwidth
	// Bottleneck names the binding constraint ("device", a link name,
	// or "demand" when nothing saturates).
	Bottleneck string
}

// solver iteration count: constraint scaling is monotone decreasing;
// three passes settle every topology we build (validated by tests).
const solveIterations = 8

// StreamBandwidth predicts the rate T threads on the given cores achieve
// streaming against node id with the given mix and mode.
func (e *Engine) StreamBandwidth(cores []topology.Core, id topology.NodeID, mix Mix, mode AccessMode) (Result, error) {
	if len(cores) == 0 {
		return Result{}, fmt.Errorf("perf: no cores")
	}
	node, err := e.M.Node(id)
	if err != nil {
		return Result{}, err
	}
	flows := make([]Flow, len(cores))
	for i, c := range cores {
		d, err := e.ThreadDemand(c, id)
		if err != nil {
			return Result{}, err
		}
		p, err := e.M.Path(c, id)
		if err != nil {
			return Result{}, err
		}
		flows[i] = Flow{Core: c, Demand: d, Alloc: d, Path: p}
	}

	deviceCap := node.EffectiveCap(mix.ReadFrac)
	// Gather distinct links.
	var links []*interconnect.Link
	seen := map[*interconnect.Link]bool{}
	for _, f := range flows {
		for _, l := range f.Path.Links {
			if !seen[l] {
				seen[l] = true
				links = append(links, l)
			}
		}
	}

	bottleneck := "demand"
	for iter := 0; iter < solveIterations; iter++ {
		// Device constraint over all flows.
		if scaleConstraint(flows, func(Flow) bool { return true }, deviceCap) {
			bottleneck = "device"
		}
		// Each link constrains the flows crossing it.
		for _, l := range links {
			cap := l.EffectiveCap()
			if cap <= 0 {
				continue
			}
			link := l
			if scaleConstraint(flows, func(f Flow) bool { return f.Path.Contains(link) }, cap) {
				bottleneck = link.Name
			}
		}
	}

	minAlloc := math.Inf(1)
	for _, f := range flows {
		if v := float64(f.Alloc); v < minAlloc {
			minAlloc = v
		}
	}
	total := minAlloc * float64(len(flows))
	// The straggler total can never exceed the device's ability to
	// serve; if faster threads' early finish left headroom the device
	// still bounds the aggregate.
	if total > float64(deviceCap) {
		total = float64(deviceCap)
		bottleneck = "device"
	}
	total *= mix.factor()
	if mode == AppDirect {
		total *= PMDKFactor
	}
	return Result{
		Flows:      flows,
		Total:      units.Bandwidth(total),
		DeviceCap:  deviceCap,
		Bottleneck: bottleneck,
	}, nil
}

// scaleConstraint scales member allocations proportionally when their
// sum exceeds cap; returns whether the constraint was binding.
func scaleConstraint(flows []Flow, member func(Flow) bool, cap units.Bandwidth) bool {
	var sum float64
	for _, f := range flows {
		if member(f) {
			sum += float64(f.Alloc)
		}
	}
	if sum <= float64(cap) || sum == 0 {
		return false
	}
	scale := float64(cap) / sum
	for i := range flows {
		if member(flows[i]) {
			flows[i].Alloc = units.Bandwidth(float64(flows[i].Alloc) * scale)
		}
	}
	return true
}

// ThreadSweep runs StreamBandwidth for 1..len(cores) threads taken in
// order, returning one Total per count — exactly one curve of the
// paper's figures.
func (e *Engine) ThreadSweep(cores []topology.Core, id topology.NodeID, mix Mix, mode AccessMode) ([]units.Bandwidth, error) {
	out := make([]units.Bandwidth, 0, len(cores))
	for n := 1; n <= len(cores); n++ {
		r, err := e.StreamBandwidth(cores[:n], id, mix, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, r.Total)
	}
	return out, nil
}
