package cxlpmem

import (
	"errors"
	"sync"
)

// benchRegion is a persistent in-memory pmem region for root-level
// benches and tests.
type benchRegion struct {
	mu   sync.Mutex
	data []byte
}

func newBenchRegion(size int) *benchRegion {
	return &benchRegion{data: make([]byte, size)}
}

func (r *benchRegion) ReadAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("benchRegion: out of range")
	}
	copy(p, r.data[off:])
	return nil
}

func (r *benchRegion) WriteAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("benchRegion: out of range")
	}
	copy(r.data[off:], p)
	return nil
}

func (r *benchRegion) Size() int64      { return int64(len(r.data)) }
func (r *benchRegion) Persistent() bool { return true }
