package cxlpmem

import (
	"testing"

	"cxlpmem/internal/chaos"
	"cxlpmem/internal/cxl"
)

// BenchmarkChaosOverhead drives the same line write/read loop as
// BenchmarkCXLPortLine in three configurations, so benchstat can show
// what an installed-but-quiet chaos engine costs:
//
//   - detached: no engine, the production fast path;
//   - attached-idle: an engine whose plan has exhausted its fire
//     budget — exhaustion auto-uninstalls the port hook, so this must
//     be code-path-identical to detached (CI gates the ratio ≤1.01);
//   - armed: a live rule whose address filter never matches the
//     traffic, i.e. the true per-flit cost of keeping a plan hot.
func BenchmarkChaosOverhead(b *testing.B) {
	run := func(b *testing.B, mode string) {
		rp, base := benchCXLPort(b)
		var line [cxl.LineSize]byte
		switch mode {
		case "attached-idle":
			eng, err := chaos.NewEngine(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
				{Site: chaos.SitePort, Action: chaos.ActDrop, Trigger: chaos.Trigger{Nth: 1, Count: 1}},
			}})
			if err != nil {
				b.Fatal(err)
			}
			eng.AttachPort(rp)
			// One throwaway write fires the single-shot rule; the
			// exhausted plan uninstalls its hook before the timer starts.
			if err := rp.WriteLine(base, &line); err != nil {
				b.Fatal(err)
			}
			if eng.Fires() != 1 {
				b.Fatalf("warmup fired %d times, want 1 (plan not exhausted)", eng.Fires())
			}
		case "armed":
			eng, err := chaos.NewEngine(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
				{Site: chaos.SitePort, Action: chaos.ActCorrupt,
					Trigger: chaos.Trigger{Every: 1, AddrLo: 1 << 40, AddrHi: 1<<40 + 64}},
			}})
			if err != nil {
				b.Fatal(err)
			}
			eng.AttachPort(rp)
			defer eng.Disarm()
		}
		b.SetBytes(int64(cxl.LineSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := base + uint64(i%1024)*64
			if err := rp.WriteLine(addr, &line); err != nil {
				b.Fatal(err)
			}
			if err := rp.ReadLine(addr, &line); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("detached", func(b *testing.B) { run(b, "detached") })
	b.Run("attached-idle", func(b *testing.B) { run(b, "attached-idle") })
	b.Run("armed", func(b *testing.B) { run(b, "armed") })
}
