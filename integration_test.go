package cxlpmem

import (
	"testing"

	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/topology"
)

// TestRealDataMatrix executes the full §3.2 class structure with
// genuine data movement (small arrays): every (mode, target, placement)
// combination runs the four kernels, validates STREAM's arithmetic and
// persists through the right stack. This is the integration gate tying
// numa placement, the perf engine, the pmem layer and the CXL protocol
// together in one pass.
func TestRealDataMatrix(t *testing.T) {
	rt, err := NewSetup1(Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8000
	type cfg struct {
		name  string
		node  topology.NodeID
		mode  perf.AccessMode
		place func() ([]topology.Core, error)
		pmem  bool
	}
	cases := []cfg{
		{"1a-local-pmem0", 0, perf.AppDirect,
			func() ([]topology.Core, error) { return numa.PlaceOnSocket(rt.Machine, 0, 4) }, true},
		{"1b-remote-pmem1", 1, perf.AppDirect,
			func() ([]topology.Core, error) { return numa.PlaceOnSocket(rt.Machine, 0, 4) }, true},
		{"1b-cxl-pmem2", 2, perf.AppDirect,
			func() ([]topology.Core, error) { return numa.PlaceOnSocket(rt.Machine, 0, 4) }, true},
		{"1c-close-pmem2", 2, perf.AppDirect,
			func() ([]topology.Core, error) { return numa.PlaceThreads(rt.Machine, 20, numa.Close) }, true},
		{"1c-spread-pmem2", 2, perf.AppDirect,
			func() ([]topology.Core, error) { return numa.PlaceThreads(rt.Machine, 20, numa.Spread) }, true},
		{"2a-numa1", 1, perf.MemoryMode,
			func() ([]topology.Core, error) { return numa.PlaceOnSocket(rt.Machine, 0, 4) }, false},
		{"2b-numa2-all", 2, perf.MemoryMode,
			func() ([]topology.Core, error) { return numa.PlaceThreads(rt.Machine, 20, numa.Close) }, false},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cores, err := c.place()
			if err != nil {
				t.Fatal(err)
			}
			var arr stream.Arrays
			if c.pmem {
				pool, err := rt.CreatePool(c.node, "matrix.obj", stream.Layout, int64(n)*3*8+4<<20)
				if err != nil {
					t.Fatal(err)
				}
				arr, err = stream.AllocPmemArrays(pool, n)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				arr, err = stream.NewVolatileArrays(n)
				if err != nil {
					t.Fatal(err)
				}
			}
			b := &stream.Bench{Engine: rt.Engine, Cores: cores, Node: c.node, Mode: c.mode}
			results, err := b.Run(arr, stream.Config{N: n, NTimes: 2, Seed: int64(i + 1)})
			if err != nil {
				t.Fatal(err) // includes STREAM validation failures
			}
			if len(results) != 4 {
				t.Fatalf("results = %d", len(results))
			}
			for _, r := range results {
				if r.BestRate <= 0 {
					t.Errorf("%s: zero rate", r.Op)
				}
			}
		})
		// Pool files accumulate per node; remove so the next case can
		// recreate on the same mount.
		if c.pmem {
			mnt, err := rt.MountFor(c.node)
			if err != nil {
				t.Fatal(err)
			}
			if err := mnt.Remove("matrix.obj"); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The CXL cases really exercised the endpoint.
	if rt.Card.Stats().Writes.Load() == 0 {
		t.Error("matrix never touched the CXL endpoint")
	}
}
