package cxlpmem

import (
	"strings"
	"testing"

	"cxlpmem/internal/streamer"
)

// TestPaperClaimsSummary is the top-level reproduction gate: every §4
// headline claim must hold on the regenerated data.
func TestPaperClaimsSummary(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	claims, err := h.SummaryClaims()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range claims {
		t.Run(c.ID, func(t *testing.T) {
			if !c.Pass {
				t.Errorf("paper: %s\nmeasured: %s", c.Paper, c.Measured)
			}
		})
	}
}

// TestTable1Properties regenerates Table 1 from the live runtime.
func TestTable1Properties(t *testing.T) {
	rt, err := NewSetup1(Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rt.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].AppDirect, "Non-volatile") {
		t.Error("App-Direct volatility row wrong")
	}
}

// TestTable2Aspects regenerates Table 2.
func TestTable2Aspects(t *testing.T) {
	rt, err := NewSetup1(Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rt.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 2 rows = %d", len(rows))
	}
}

// TestFiguresRegenerate smoke-tests all four figure generators through
// the public API.
func TestFiguresRegenerate(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	figs, err := h.AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Groups) != len(streamer.Groups) {
			t.Errorf("figure %d has %d groups", f.Number, len(f.Groups))
		}
	}
}

// TestPublicAPISurface exercises the re-exported workflow end to end:
// pool on CXL, transactional update, crash, recovery.
func TestPublicAPISurface(t *testing.T) {
	rt, err := NewSetup1(Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.CreatePool(2, "api.obj", "api-test", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := pool.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.SetUint64(oid, 0, 12345); err != nil {
		t.Fatal(err)
	}
	pool.SimulateCrash()
	re, err := rt.OpenPool(2, "api.obj", "api-test")
	if err != nil {
		t.Fatal(err)
	}
	v, err := re.GetUint64(oid, 0)
	if err != nil || v != 12345 {
		t.Errorf("recovered value = %d, %v", v, err)
	}
	// Checkpoint manager through the public surface.
	cp, err := NewCheckpointManager(re, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(1, 0, []byte("state")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpointManager(re); err != nil {
		t.Fatal(err)
	}
	if GBps(1).GBps() != 1 {
		t.Error("GBps helper")
	}
}
