// Concurrency benchmarks: quantify how the multi-queue port and the
// multi-lane transaction machinery scale when many goroutines share one
// data path. Each benchmark has a serial baseline and a parallel
// variant pinned to (at least) 8 goroutines; comparing the two MB/s
// figures gives the aggregate-scaling factor CI's bench smoke records.
// On the steady state both paths allocate nothing (ReportAllocs).
package cxlpmem

import (
	"runtime"
	"sync/atomic"
	"testing"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/pmem"
	"cxlpmem/internal/units"
)

// parallelGoroutines is the goroutine count the parallel benchmarks
// target (the ISSUE's scaling criterion is quoted at 8).
const parallelGoroutines = 8

// setParallelism pins b.RunParallel to at least parallelGoroutines
// goroutines regardless of GOMAXPROCS.
func setParallelism(b *testing.B) {
	p := (parallelGoroutines + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(p)
}

// BenchmarkParallelPorts measures the aggregate CXL.mem burst
// throughput of one port driven by many goroutines, against the same
// loop on a single goroutine. Every goroutine owns a private 1 MiB
// region, so the comparison isolates data-path serialisation: with the
// multi-queue issue model and the sharded media store, the parallel
// aggregate should scale with cores instead of collapsing onto one
// lock.
func BenchmarkParallelPorts(b *testing.B) {
	const burst = cxl.MaxBurstLines * cxl.LineSize // 4 KiB
	const regionBytes = 1 << 20

	run := func(b *testing.B, rp *cxl.RootPort, region uint64, buf []byte, i int) {
		addr := region + uint64(i%(regionBytes/burst))*uint64(burst)
		if err := rp.WriteBurst(addr, buf); err != nil {
			b.Fatal(err)
		}
		if err := rp.ReadBurst(addr, buf); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("serial", func(b *testing.B) {
		rp, base := benchCXLPort(b)
		buf := make([]byte, burst)
		if err := rp.WriteBurst(base, buf); err != nil { // pre-touch
			b.Fatal(err)
		}
		b.SetBytes(2 * int64(burst))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rp, base, buf, i)
		}
	})

	b.Run("parallel8", func(b *testing.B) {
		rp, base := benchCXLPort(b)
		var nextWorker atomic.Uint64
		setParallelism(b)
		b.SetBytes(2 * int64(burst))
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			region := base + (nextWorker.Add(1)%16)*regionBytes
			buf := make([]byte, burst)
			for i := 0; pb.Next(); i++ {
				run(b, rp, region, buf, i)
			}
		})
	})
}

// BenchmarkConcurrentTx measures transactional update throughput —
// pmemobj-style Begin/AddRange/Commit over 4 KiB objects — serial vs
// many goroutines on disjoint objects. The multi-lane undo log lets
// independent transactions snapshot and commit concurrently; the serial
// baseline bounds what one lane could do.
func BenchmarkConcurrentTx(b *testing.B) {
	const objSize = 4096

	b.Run("serial", func(b *testing.B) {
		p := benchPool(b, 64<<20)
		oid, err := p.Alloc(objSize)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(objSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := p.Update(oid, 0, objSize, func(v []byte) error {
				v[i%objSize] = byte(i)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel8", func(b *testing.B) {
		p := benchPool(b, 64<<20)
		// One object per potential worker, handed out through a free
		// list so no object ever has two concurrent writers
		// (single-writer-per-object is the pmem contract).
		const objs = 64
		free := make(chan pmem.OID, objs)
		for i := 0; i < objs; i++ {
			oid, err := p.Alloc(objSize)
			if err != nil {
				b.Fatal(err)
			}
			free <- oid
		}
		setParallelism(b)
		b.SetBytes(objSize)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			oid := <-free
			defer func() { free <- oid }()
			for i := 0; pb.Next(); i++ {
				err := p.Update(oid, 0, objSize, func(v []byte) error {
					v[i%objSize] = byte(i)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkParallelCluster runs the measured multi-host scale-out: k
// hosts concurrently streaming bursts at one pooled appliance through
// the real switch/MLD path (the RunParallel mode of internal/cluster).
func BenchmarkParallelCluster(b *testing.B) {
	c, err := cluster.New(4, 64*units.MiB)
	if err != nil {
		b.Fatal(err)
	}
	const perHost = 4 << 20
	b.SetBytes(4 * perHost)
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		pt, err := c.RunParallel(4, perHost, 10)
		if err != nil {
			b.Fatal(err)
		}
		last = pt.Aggregate.GBps()
	}
	b.StopTimer()
	b.ReportMetric(last, "measured-aggregate:GB/s")
}
