// Hybrid memory architecture — the paper's §6 future-work item #2:
// DDR5 + CXL + DCPMM combined in one tiered hierarchy. Pages are
// allocated cold (far tier first — memtier's cold-start placement);
// the background policy daemon watches device-side heat windows and
// promotes the hot set one tier per epoch toward DDR5, within a
// per-epoch migration budget, and the average access latency drops.
package main

import (
	"fmt"
	"log"

	"cxlpmem/internal/tiering"
	"cxlpmem/internal/topology"
)

func main() {
	log.SetFlags(0)
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	// 4 fast DDR5 pages, 8 CXL pages, 16 cold DCPMM pages.
	mgr, hybrid, err := tiering.NewDDR5CXLDCPMMHierarchy(m, 4, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid hierarchy:", hybrid.Name)
	for i, t := range mgr.Tiers() {
		fmt.Printf("  tier %d: %-6s %d pages on %s\n", i, t.Name, t.CapacityPages, t.Node.Device.Name())
	}
	daemon, err := tiering.NewDaemon(mgr, tiering.DaemonConfig{BudgetPages: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()

	// Allocate 16 pages; cold start lands every one of them on DCPMM —
	// they must earn their way up through observed heat.
	var pages []tiering.PageID
	for i := 0; i < 16; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			log.Fatal(err)
		}
		pages = append(pages, id)
	}
	for _, id := range pages {
		if tier, _ := mgr.TierOf(id); tier != 2 {
			log.Fatalf("cold start violated: page %d on tier %d", id, tier)
		}
	}
	fmt.Printf("\ncold start: all %d pages on dcpmm\n", len(pages))

	// Skewed workload: the first four pages are the hot set.
	buf := make([]byte, 4096)
	access := func() {
		for _, id := range pages[:4] {
			for i := 0; i < 64; i++ {
				if err := mgr.Read(id, buf, 0); err != nil {
					log.Fatal(err)
				}
			}
		}
		for _, id := range pages[4:] {
			if err := mgr.Read(id, buf, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	c0, err := hybrid.Core(0)
	if err != nil {
		log.Fatal(err)
	}

	access()
	before, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the daemon epoch by epoch: the hot set climbs dcpmm → cxl
	// → ddr5, one level per eligible epoch, within the budget.
	for epoch := 0; epoch < 6; epoch++ {
		access()
		st := daemon.RunEpoch()
		tiers := mgr.Stats().PagesPerTier
		fmt.Printf("epoch %d: %d promoted, %d demoted, budget %d -> ddr5=%d cxl=%d dcpmm=%d\n",
			st.Epoch, st.Promoted, st.Demoted, st.BudgetUsed, tiers[0], tiers[1], tiers[2])
	}

	access()
	after, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		log.Fatal(err)
	}
	st := mgr.Stats()
	fmt.Printf("\ndaemon total: %d promoted, %d demoted, %d MiB moved\n",
		st.Promotions, st.Demotions, st.BytesMigrated>>20)
	fmt.Printf("avg access latency: %s cold-start -> %s converged (%.1fx better)\n",
		before, after, before.Ns()/after.Ns())
	for _, id := range pages[:4] {
		tier, err := mgr.TierOf(id)
		if err != nil {
			log.Fatal(err)
		}
		if tier != 0 {
			log.Fatalf("hot page %d still on tier %d", id, tier)
		}
	}
	fmt.Println("all four hot pages earned their way up to DDR5")
}
