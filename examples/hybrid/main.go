// Hybrid memory architecture — the paper's §6 future-work item #2:
// DDR5 + CXL + DCPMM combined in one tiered hierarchy. A skewed access
// pattern (a few hot pages, many cold) first lands wherever capacity
// allows; the tiering daemon then migrates hot pages toward DDR5 and
// cold pages toward DCPMM, and the average access latency drops.
package main

import (
	"fmt"
	"log"

	"cxlpmem/internal/tiering"
	"cxlpmem/internal/topology"
)

func main() {
	log.SetFlags(0)
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	// 4 fast DDR5 pages, 8 CXL pages, 16 cold DCPMM pages.
	mgr, hybrid, err := tiering.NewDDR5CXLDCPMMHierarchy(m, 4, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid hierarchy:", hybrid.Name)
	for i, t := range mgr.Tiers() {
		fmt.Printf("  tier %d: %-6s %d pages on %s\n", i, t.Name, t.CapacityPages, t.Node.Device.Name())
	}

	// Allocate 24 pages; first-touch fills ddr5 then cxl then dcpmm.
	var pages []tiering.PageID
	for i := 0; i < 24; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			log.Fatal(err)
		}
		pages = append(pages, id)
	}

	// Skewed workload: the LAST four pages (cold-tier residents) are
	// the hot set — the worst case for first-touch placement.
	buf := make([]byte, 4096)
	access := func() {
		for _, id := range pages[20:] {
			for i := 0; i < 64; i++ {
				if err := mgr.Read(id, buf, 0); err != nil {
					log.Fatal(err)
				}
			}
		}
		for _, id := range pages[:20] {
			if err := mgr.Read(id, buf, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	c0, err := hybrid.Core(0)
	if err != nil {
		log.Fatal(err)
	}

	access()
	before, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		log.Fatal(err)
	}
	moves, err := mgr.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	access()
	after, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		log.Fatal(err)
	}
	st := mgr.Stats()
	fmt.Printf("\nrebalance: %d migrations (%d promoted, %d demoted, %d MiB moved)\n",
		moves, st.Promotions, st.Demotions, st.BytesMigrated>>20)
	fmt.Printf("pages per tier now: ddr5=%d cxl=%d dcpmm=%d\n",
		st.PagesPerTier[0], st.PagesPerTier[1], st.PagesPerTier[2])
	fmt.Printf("avg access latency: %s before -> %s after (%.1fx better)\n",
		before, after, before.Ns()/after.Ns())
	for _, id := range pages[20:] {
		tier, err := mgr.TierOf(id)
		if err != nil {
			log.Fatal(err)
		}
		if tier != 0 {
			log.Fatalf("hot page %d still on tier %d", id, tier)
		}
	}
	fmt.Println("all four hot pages now reside on DDR5")
}
