// Memory Mode: CXL memory as cache-coherent NUMA expansion (paper
// Class 2). Demonstrates numactl-style binding against the CXL node,
// capacity accounting, and the close/spread thread-affinity sweep of
// §3.2 Class 1.c / 2.b.
package main

import (
	"fmt"
	"log"

	"cxlpmem"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/stream"
)

func main() {
	log.SetFlags(0)
	rt, err := cxlpmem.NewSetup1(cxlpmem.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}

	// numactl --membind=2: allocations land on the CXL node only.
	a, err := rt.AllocMemoryMode(numa.NewMembind(2), 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("membind=2 allocation: node%d, %d MiB (node usage %d MiB)\n",
		a.Node.ID, len(a.Data)>>20, rt.NodeUsage(2)>>20)

	// numactl --interleave=0,1,2 spreads consecutive allocations.
	pol := numa.NewInterleave(0, 1, 2)
	fmt.Print("interleave=0,1,2 placements:")
	for i := 0; i < 6; i++ {
		r, err := rt.Reserve(pol, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" node%d", r.Node.ID)
	}
	fmt.Println()

	// Close vs spread sweep against the CXL node (Memory Mode).
	fmt.Println("\nTriad GB/s vs threads on numa#2 (Memory Mode):")
	fmt.Printf("%8s %10s %10s\n", "threads", "close", "spread")
	closeCores, err := numa.PlaceThreads(rt.Machine, 20, numa.Close)
	if err != nil {
		log.Fatal(err)
	}
	spreadCores, err := numa.PlaceThreads(rt.Machine, 20, numa.Spread)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := rt.Engine.ThreadSweep(closeCores, 2, stream.Triad.Mix(), cxlpmem.MemoryMode)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := rt.Engine.ThreadSweep(spreadCores, 2, stream.Triad.Mix(), cxlpmem.MemoryMode)
	if err != nil {
		log.Fatal(err)
	}
	for t := 1; t <= 20; t++ {
		fmt.Printf("%8d %10.2f %10.2f\n", t, cs[t-1].GBps(), ss[t-1].GBps())
	}
	fmt.Println("\nnote the convergence at 20 threads — paper §4 Class 1.c/2.b")
}
