// Multi-tenant elasticity — the fabric manager's dynamic-capacity
// model end to end: three tenant hosts share one pooled appliance
// through a CXL 2.0 switch, and their shares grow, shrink, move and
// get forcibly reclaimed while traffic flows. The finale wires the
// hybrid-tiering manager's demotion target through a fabric-granted
// extent, so cold pages physically land on capacity that was added
// dynamically — the paper's §6 future-work items (scale-out pooling
// and hybrid architectures) composed.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/telemetry"
	"cxlpmem/internal/tiering"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

func main() {
	log.SetFlags(0)

	// A 24 MiB appliance, three tenants with 16 MiB quotas, 4 MiB
	// starting capacity each. The QoS pipeline is set to a deliberately
	// tiny 8 MB/s so the share enforcement is visible in wall-clock
	// bandwidth.
	e, err := cluster.NewElastic(cluster.ElasticConfig{
		Hosts:        3,
		Pool:         24 * units.MiB,
		Quota:        16 * units.MiB,
		Initial:      4 * units.MiB,
		PipelineGBps: 0.008,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(e.Describe())

	// One registry observes everything below: every host port's latency
	// histograms and ring counters, the fabric manager's grant/reclaim
	// ledger, and (wired later) the tiering manager's migrations. The
	// same registry is what `fabricctl top -serve` exports over HTTP.
	// The demo moves only a few hundred transactions per host, so sample
	// densely; a long-lived deployment would keep the 1-in-64 default.
	reg := telemetry.NewRegistry()
	e.EnableTelemetry(reg, cxl.TelemetryOptions{SampleN: 4})

	// --- Elastic growth under skewed QoS shares -----------------------
	// host0's workload heats up: it gets more capacity and a bigger
	// share of the pipeline; the others are squeezed.
	fmt.Println("\n── host0 grows by 4 MiB and takes a 60% pipeline share")
	grown, err := e.Grow(0, 4*units.MiB)
	if err != nil {
		log.Fatal(err)
	}
	for _, x := range grown {
		fmt.Println("   granted:", x)
	}
	for i, share := range []float64{0.60, 0.20, 0.20} {
		if err := e.Throttle.SetShare(fmt.Sprintf("host%d", i), share); err != nil {
			log.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	rates := make([]units.Bandwidth, len(e.Hosts))
	for i := range e.Hosts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := e.Drive(i, 512*units.KiB)
			if err != nil {
				log.Fatal(err)
			}
			rates[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range rates {
		fmt.Printf("   host%d drove 512 KiB at %v (share %.0f%%)\n", i, r, []float64{60, 20, 20}[i])
	}

	// --- Forced reclaim of an unresponsive tenant ---------------------
	fmt.Println("\n── host2 stops responding: forced reclaim, then its bytes move to host1")
	revoked, err := e.Fabric.ForceReclaim("host2")
	if err != nil {
		log.Fatal(err)
	}
	h2 := e.Hosts[2]
	buf := make([]byte, 4096)
	accessErr := h2.IO.ReadBurst(h2.Window.Base+revoked[0].DPA, buf)
	fmt.Printf("   host2 access now fails with poison: %v\n", accessErr)
	if _, err := e.Grow(1, 4*units.MiB); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   host1 absorbed the reclaimed capacity: %v active\n", e.Capacity(1))

	// --- Cold pages onto dynamically added capacity -------------------
	// host0 builds a two-tier hierarchy: 2 pages of fast local DDR5,
	// and a cold tier whose device is host0's fabric-granted capacity —
	// including the extent added by the Grow above. The tiering manager
	// demotes cold pages there with real data movement.
	fmt.Println("\n── tiering: cold pages demoted onto host0's fabric-granted extents")
	fastDev, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "ddr5-host0", Rate: 4800, Channels: 1,
		CapacityPerChannel: 4 * units.MiB,
	})
	if err != nil {
		log.Fatal(err)
	}
	h0 := e.Hosts[0]
	coldDev := h0.Tenant.Device() // quota-sized, extent-backed
	mgr, err := tiering.NewManager(
		&tiering.Tier{
			Name:          "ddr5",
			Node:          &topology.Node{ID: 0, Kind: topology.NodeDRAM, Device: fastDev, HomeSocket: 0},
			CapacityPages: 2,
		},
		&tiering.Tier{
			Name:          "cxl-dcd",
			Node:          &topology.Node{ID: 1, Kind: topology.NodeCXL, Device: coldDev, HomeSocket: -1, AttachSocket: 0},
			CapacityPages: 4, // 8 MiB: the initial 4 MiB grant + the grown 4 MiB
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	mgr.RegisterMetrics(reg)
	var pages []tiering.PageID
	for i := 0; i < 6; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			log.Fatal(err)
		}
		pages = append(pages, id)
	}
	// Cold-start placement put the first four pages on the fabric-granted
	// cold tier and the overflow on DDR5. Pages 0 and 1 — cold-tier
	// residents — are the hot set; the rest go cold. Write real data so
	// the migrations move real bytes.
	payload := make([]byte, 64)
	for _, id := range pages {
		for i := range payload {
			payload[i] = byte(id)
		}
		if err := mgr.Write(id, payload, 0); err != nil {
			log.Fatal(err)
		}
	}
	for r := 0; r < 16; r++ {
		for _, id := range pages[:2] {
			if err := mgr.Read(id, payload, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	before := coldDev.Stats().BytesWrite.Load()
	migrations, err := mgr.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	demotedBytes := coldDev.Stats().BytesWrite.Load() - before
	st := mgr.Stats()
	fmt.Printf("   rebalance: %d migrations (%d promotions, %d demotions)\n", migrations, st.Promotions, st.Demotions)
	fmt.Printf("   %d bytes of cold pages landed on fabric-granted capacity\n", demotedBytes)
	for _, id := range pages {
		ti, err := mgr.TierOf(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   page %d -> tier %d (%s)\n", id, ti, []string{"ddr5", "cxl-dcd"}[ti])
	}
	// The demoted pages are still intact through the tiering view.
	for _, id := range pages {
		if err := mgr.Read(id, payload, 0); err != nil {
			log.Fatal(err)
		}
		if payload[0] != byte(id) {
			log.Fatalf("page %d corrupted after demotion: %#x", id, payload[0])
		}
	}
	fmt.Println("   all pages verified after migration")

	fmt.Println()
	fmt.Print(e.Fabric.Describe())

	// --- The whole run through one pane of glass ----------------------
	// Everything above left its trace in the registry: port traffic and
	// tail latency, the fabric grant/reclaim ledger, and the tiering
	// migrations — one Gather, no per-subsystem plumbing.
	fmt.Println("\n── telemetry: the same story, read back from the unified registry")
	var burst *telemetry.HistSnapshot
	for _, s := range reg.Gather() {
		switch {
		case s.Kind == telemetry.KindHistogram &&
			s.Name == "cxl_port_latency_ns" &&
			strings.Contains(s.Labels, `port="rp-h0"`) &&
			strings.Contains(s.Labels, `op="burst"`):
			burst = s.Hist
		case s.Kind == telemetry.KindHistogram, s.Value == 0:
		case strings.HasPrefix(s.Name, "cxl_port_issued"),
			strings.HasPrefix(s.Name, "fabric_"),
			strings.HasPrefix(s.Name, "tiering_"):
			fmt.Printf("   %s%s = %.0f\n", s.Name, s.Labels, s.Value)
		}
	}
	if burst != nil && burst.Count > 0 {
		fmt.Printf("   host0 burst latency: p50=%dns p99=%dns over %d sampled transactions\n",
			burst.Quantile(0.50), burst.Quantile(0.99), burst.Count)
	}
}
