// Pooled memory across hosts — the paper's §6 future-work scenario:
// four compute nodes reach one battery-backed CXL memory appliance
// through a CXL 2.0 switch with a Multi-Logical Device carved into
// per-host partitions. Each host creates its own persistent pool on its
// partition, one host crashes and recovers, and the scale-out model
// shows the shared-pipeline contention.
package main

import (
	"fmt"
	"log"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/pmem"
	"cxlpmem/internal/units"
)

func main() {
	log.SetFlags(0)
	c, err := cluster.New(4, 256*units.MiB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Describe())

	// Every host writes a private persistent pool on its partition.
	for _, h := range c.Hosts {
		region := hostRegion{h}
		pool, err := pmem.Create(region, "pooled-demo")
		if err != nil {
			log.Fatal(err)
		}
		oid, err := pool.Alloc(64)
		if err != nil {
			log.Fatal(err)
		}
		if err := pool.SetUint64(oid, 0, uint64(1000+h.Index)); err != nil {
			log.Fatal(err)
		}
		if h.Index == 2 {
			// Host 2 loses power; the appliance battery keeps its
			// partition intact.
			pool.SimulateCrash()
			re, err := pmem.Open(region, "pooled-demo")
			if err != nil {
				log.Fatal(err)
			}
			v, err := re.GetUint64(oid, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("host2 recovered its pooled state after power loss: %d\n", v)
		}
	}

	fmt.Println("\nscale-out (Triad, 10 threads/host):")
	pts, err := c.Scalability(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %14s %14s\n", "hosts", "per-host GB/s", "aggregate GB/s")
	for _, p := range pts {
		fmt.Printf("%8d %14.2f %14.2f\n", p.Hosts, p.PerHost.GBps(), p.Aggregate.GBps())
	}
	fmt.Println("\nthe appliance pipeline saturates; per-host bandwidth decays as hosts join —")
	fmt.Println("the §6 scalability question, quantified.")
}

type hostRegion struct {
	h *cluster.Node
}

func (r hostRegion) ReadAt(p []byte, off int64) error {
	return r.h.IO.ReadAt(p, int64(r.h.Window.Base)+off)
}
func (r hostRegion) WriteAt(p []byte, off int64) error {
	return r.h.IO.WriteAt(p, int64(r.h.Window.Base)+off)
}
func (r hostRegion) Size() int64      { return int64(r.h.Window.Size) }
func (r hostRegion) Persistent() bool { return r.h.LD.Media().Persistent() }
