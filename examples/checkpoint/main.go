// Checkpoint/restart of a scientific solver on CXL persistent memory —
// the HPC use case of paper §1.2. A Jacobi heat solver checkpoints
// incrementally into a pool on /mnt/pmem2, the node loses power
// mid-run, and the computation resumes bit-exactly from the last
// snapshot.
package main

import (
	"fmt"
	"log"

	"cxlpmem"
	"cxlpmem/internal/solver"
)

func main() {
	log.SetFlags(0)
	rt, err := cxlpmem.NewSetup1(cxlpmem.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := rt.CreatePool(2, "cr.obj", "checkpoint-v1", 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := cxlpmem.NewCheckpointManager(pool, 8)
	if err != nil {
		log.Fatal(err)
	}

	const grid = 64
	j, err := solver.NewJacobi(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jacobi %dx%d, checkpoint every 25 iterations to /mnt/pmem2\n", grid, grid)
	last, err := j.RunWithCheckpoints(mgr, 150, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d iterations; last snapshot id %d (reused %d/%d chunks incrementally)\n",
		j.Iter, last, mgr.LastReused(), (16+8*grid*grid+4095)/4096)

	fmt.Println("simulating node power failure at iteration 150...")
	pool.SimulateCrash()

	re, err := rt.OpenPool(2, "cr.obj", "checkpoint-v1")
	if err != nil {
		log.Fatal(err)
	}
	mgr2, err := cxlpmem.OpenCheckpointManager(re)
	if err != nil {
		log.Fatal(err)
	}
	j2, id, err := solver.RestoreLatestJacobi(mgr2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored snapshot %d (iteration %d); continuing to 300\n", id, j2.Iter)
	var res float64
	for j2.Iter < 300 {
		res = j2.Step()
	}
	fmt.Printf("done: iteration %d, residual %.3g, mid-grid temperature %.6f\n",
		j2.Iter, res, j2.Grid[(grid/2)*grid+grid/2])
}
