// Quickstart: the end-to-end App-Direct workflow of the paper in ~60
// lines — assemble Setup #1, create a pmemobj pool on the CXL-attached
// memory (/mnt/pmem2), store data transactionally, lose power, and
// recover it, exactly as PMDK code did on Optane DCPMM.
package main

import (
	"fmt"
	"log"

	"cxlpmem"
)

func main() {
	log.SetFlags(0)

	// Setup #1: two Sapphire Rapids sockets + the Agilex-7 CXL
	// prototype, enumerated and mounted at /mnt/pmem{0,1,2}.
	rt, err := cxlpmem.NewSetup1(cxlpmem.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rt.Machine.Describe())

	// pmemobj_create("/mnt/pmem2/pool.obj", "quickstart", ...).
	pool, err := rt.CreatePool(2, "pool.obj", "quickstart", 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool on /mnt/pmem2: layout=%q persistent=%v\n", pool.Layout(), pool.Persistent())

	// POBJ_ALLOC + direct access.
	oid, data, err := pool.AllocFloat64s(1024)
	if err != nil {
		log.Fatal(err)
	}
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	if err := pool.PersistFloat64s(oid, 0, 1024); err != nil {
		log.Fatal(err)
	}
	pool.Drain()

	// A transactional update: all-or-nothing across power failure.
	if err := pool.SetFloat64(oid, 0, 42.0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("simulating power failure...")
	pool.SimulateCrash()

	// pmemobj_open runs recovery; battery-backed CXL media retained
	// everything.
	re, err := rt.OpenPool(2, "pool.obj", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	v0, err := re.GetFloat64(oid, 0)
	if err != nil {
		log.Fatal(err)
	}
	back, err := re.Float64s(oid, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: data[0]=%v (transactional update survived), data[1000]=%v\n", v0, back[1000])

	// The same pool on /mnt/pmem0 (socket DRAM) would NOT survive —
	// that is the paper's case for the battery-backed CXL module.
	dram, err := rt.CreatePool(0, "pool.obj", "quickstart", 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	dram.SimulateCrash()
	if _, err := rt.OpenPool(0, "pool.obj", "quickstart"); err != nil {
		fmt.Println("DRAM-emulated pmem after power loss:", err)
	}
}
