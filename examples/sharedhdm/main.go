// Shared HDM with application-level coherency — the prototype
// configuration of paper §2.2: "the same far memory segment can be made
// available to two distinct NUMA nodes ... the onus of maintaining
// coherency ... rests with the applications". Two hosts exchange work
// through one CXL device using a Peterson lock and explicit
// flush/invalidate.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"cxlpmem/internal/coherency"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
)

func main() {
	log.SetFlags(0)
	card, err := fpga.New(fpga.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Two HPA windows onto the same media, one per NUMA node.
	const w0, w1 = uint64(0x10_0000_0000), uint64(0x20_0000_0000)
	if err := card.ProgramDecoder(&cxl.HDMDecoder{Base: w0, Size: 1 << 30}); err != nil {
		log.Fatal(err)
	}
	if err := card.ProgramDecoder(&cxl.HDMDecoder{Base: w1, Size: 1 << 30}); err != nil {
		log.Fatal(err)
	}
	rp0 := cxl.NewRootPort("rp-node0", card.Link())
	if err := rp0.Attach(card); err != nil {
		log.Fatal(err)
	}
	rp1 := cxl.NewRootPort("rp-node1", card.Link())
	if err := rp1.Attach(card); err != nil {
		log.Fatal(err)
	}
	fmt.Println(card)
	fmt.Printf("window A %#x, window B %#x — same %s media\n", w0, w1, card.HDM().Capacity())

	h0, h1, err := coherency.NewPair(
		accessor{rp0, int64(w0)}, accessor{rp1, int64(w1)},
		coherency.Segment{Base: 0, Size: 4096},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Two hosts ping-pong a counter 100 times each under the lock.
	const per = 100
	var wg sync.WaitGroup
	work := func(h *coherency.Host) {
		defer wg.Done()
		for i := 0; i < per; i++ {
			if err := h.Acquire(); err != nil {
				log.Fatal(err)
			}
			var b [8]byte
			if err := h.Read(b[:], 0); err != nil {
				log.Fatal(err)
			}
			binary.LittleEndian.PutUint64(b[:], binary.LittleEndian.Uint64(b[:])+1)
			if err := h.Write(b[:], 0); err != nil {
				log.Fatal(err)
			}
			if err := h.Release(); err != nil {
				log.Fatal(err)
			}
		}
	}
	wg.Add(2)
	go work(h0)
	go work(h1)
	wg.Wait()

	if err := h0.Acquire(); err != nil {
		log.Fatal(err)
	}
	var b [8]byte
	if err := h0.Read(b[:], 0); err != nil {
		log.Fatal(err)
	}
	if err := h0.Release(); err != nil {
		log.Fatal(err)
	}
	got := binary.LittleEndian.Uint64(b[:])
	fmt.Printf("shared counter after 2x%d locked increments: %d (no lost updates)\n", per, got)
	fmt.Printf("device saw %d reads / %d writes over CXL.mem\n",
		card.Stats().Reads.Load(), card.Stats().Writes.Load()+card.Stats().PartialWrites.Load())
}

type accessor struct {
	rp   *cxl.RootPort
	base int64
}

func (a accessor) ReadAt(p []byte, off int64) error  { return a.rp.ReadAt(p, a.base+off) }
func (a accessor) WriteAt(p []byte, off int64) error { return a.rp.WriteAt(p, a.base+off) }
