// Shared HDM with HARDWARE coherence — the CXL 3.0 upgrade of the
// paper's §2.2 configuration. The paper's prototype exposes one far-
// memory segment to two NUMA nodes but leaves coherency to the
// application; here the Type-3 device owns a per-line MESI directory
// and recalls lines over the back-invalidate channel (BISnp/BIRsp
// through the switch), so N hosts share the segment with plain loads
// and stores: no Peterson lock, no Flush, no Invalidate anywhere in
// this file.
//
// Scenario: one producer and two consumers around a shared ring. The
// producer publishes items by ordinary stores; consumers claim items
// with a coherent fetch-add on the ring tail. Every handoff is the
// coherence protocol doing the flushing invisibly.
package main

import (
	"fmt"
	"log"
	"sync"

	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

const (
	hosts    = 3
	items    = 300
	slotBase = int64(256) // item slots start here, one word each
	offHead  = int64(0)   // producer's publish index
	offTail  = int64(64)  // consumers' claim index (own line!)
	offDone  = int64(128) // consumed-sum accumulator
)

func main() {
	log.SetFlags(0)
	s, err := topology.SetupShared(topology.SharedOptions{
		Hosts:       hosts,
		SegmentSize: 64 * units.KiB,
		Coherent:    true,
		CacheLines:  128,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Card)
	fmt.Printf("%d hosts share %v of HDM through %q; coherence: per-line MESI directory, %d lines\n",
		hosts, units.Size(s.Segment.Size), s.Switch.Name(), s.Directory.Lines())
	for _, h := range s.Hosts {
		fmt.Printf("  host%d: window %#x via %s\n", h.Index, h.WindowBase, h.Port.Name())
	}

	var wg sync.WaitGroup
	wg.Add(hosts)

	// Host 0 produces: store the item, then publish the new head. The
	// store/publish pair needs no barrier or flush — the directory
	// orders it.
	go func() {
		defer wg.Done()
		cache := s.Hosts[0].Cache
		for i := 1; i <= items; i++ {
			if err := cache.Store(slotBase+int64(i%512)*8, uint64(i)); err != nil {
				log.Fatal(err)
			}
			if err := cache.Store(offHead, uint64(i)); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Hosts 1..N-1 consume: claim the next index with a coherent
	// fetch-add, spin (with plain loads) until the producer's head
	// passes it, then read the item and fold it into the shared sum.
	for ci := 1; ci < hosts; ci++ {
		go func(ci int) {
			defer wg.Done()
			cache := s.Hosts[ci].Cache
			for {
				claim, err := cache.FetchAdd(offTail, 1)
				if err != nil {
					log.Fatal(err)
				}
				if claim > items {
					return // ring drained
				}
				for {
					head, err := cache.Load(offHead)
					if err != nil {
						log.Fatal(err)
					}
					if head >= claim {
						break
					}
				}
				v, err := cache.Load(slotBase + int64(claim%512)*8)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := cache.FetchAdd(offDone, v); err != nil {
					log.Fatal(err)
				}
			}
		}(ci)
	}
	wg.Wait()

	sum, err := s.Hosts[0].Cache.Load(offDone)
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(items) * (items + 1) / 2
	fmt.Printf("\n%d items produced by host0, consumed by %d hosts: sum %d (want %d) — %s\n",
		items, hosts-1, sum, want, map[bool]string{true: "no lost updates", false: "LOST UPDATES"}[sum == want])

	ds := s.Directory.Stats()
	fmt.Printf("directory: %d snoops (%d write-backs, %d downgrades, %d invalidations), %d shared / %d exclusive grants\n",
		ds.Snoops.Load(), ds.Writebacks.Load(), ds.Downgrades.Load(), ds.Invalidations.Load(),
		ds.SharedGrants.Load(), ds.ExclusiveGrants.Load())
	for _, h := range s.Hosts {
		cst := h.Cache.Stats()
		fmt.Printf("  host%d cache: %d hits / %d misses, %d evictions, %d write-backs, %d snoops served\n",
			h.Index, cst.Hits.Load(), cst.Misses.Load(), cst.Evictions.Load(), cst.Writebacks.Load(), cst.SnoopsServed.Load())
	}
	fmt.Printf("device saw %d reads / %d writes over CXL.mem — every byte moved through the real port path\n",
		s.Card.Stats().Reads.Load(), s.Card.Stats().Writes.Load()+s.Card.Stats().PartialWrites.Load())
	fmt.Println("explicit flush/invalidate calls in this workload: 0")
}
