// STREAM-PMem on CXL vs local DDR5 — the paper's core demonstration
// (§3.1): the same benchmark that ran against Optane DCPMM runs
// unchanged against CXL-attached memory, with real data movement,
// STREAM validation and persistence through the CXL.mem protocol.
package main

import (
	"fmt"
	"log"

	"cxlpmem"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/topology"
)

const elements = 500_000

func main() {
	log.SetFlags(0)
	rt, err := cxlpmem.NewSetup1(cxlpmem.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	cores, err := numa.PlaceOnSocket(rt.Machine, 0, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Class 1.a reference: App-Direct against local DDR5 (pmem#0).
	fmt.Println("STREAM-PMem, pool on /mnt/pmem0 (local DDR5, pmem#0):")
	runOn(rt, cores, 0)

	// Class 1.b: the identical program against CXL memory (pmem#2) —
	// "programs designed for PMem can seamlessly operate on
	// CXL-enabled devices" (§3.1).
	fmt.Println("\nSTREAM-PMem, pool on /mnt/pmem2 (CXL DDR4, pmem#2):")
	runOn(rt, cores, 2)

	if rt.Card.Stats().Writes.Load() > 0 {
		fmt.Printf("\nCXL endpoint serviced %d MemWr and %d MemRd transactions\n",
			rt.Card.Stats().Writes.Load(), rt.Card.Stats().Reads.Load())
	}
}

func runOn(rt *cxlpmem.Runtime, cores []topology.Core, node topology.NodeID) {
	poolSize := int64(elements)*3*8 + 4<<20
	pool, err := rt.CreatePool(node, "stream.obj", stream.Layout, poolSize)
	if err != nil {
		log.Fatal(err)
	}
	arr, err := stream.AllocPmemArrays(pool, elements)
	if err != nil {
		log.Fatal(err)
	}
	b := &stream.Bench{Engine: rt.Engine, Cores: cores, Node: node, Mode: cxlpmem.AppDirect}
	results, err := b.Run(arr, stream.Config{N: elements, NTimes: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stream.Header())
	for _, r := range results {
		fmt.Println(r)
	}
}
