package cxlpmem

import (
	"sort"
	"testing"
	"time"
)

// BenchmarkEvacuation measures the RAS recovery data path end to end:
// one iteration drains the victim leg onto spare headroom, hot-removes
// the drained port, hot-adds it back and restripes to full width —
// while a foreground tenant keeps issuing 4 KiB reads against the
// stripe. MB/s is the drain rate (SetBytes counts the evacuated
// bytes); fg-p99-ns reports the foreground tail latency the migration
// imposed, the ISSUE's bounded-p99 acceptance in benchstat form.
func BenchmarkEvacuation(b *testing.B) {
	s, _ := rasMatrixSet(b)
	defer s.Close()

	seed := make([]byte, rasWays*rasShare)
	for i := range seed {
		seed[i] = byte(i*13 + 7)
	}
	if err := s.WriteBurst(s.Base(), seed); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	fgDone := make(chan struct{})
	lat := make([]time.Duration, 0, 1<<16)
	go func() {
		defer close(fgDone)
		buf := make([]byte, 4096)
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if err := s.ReadBurst(s.Base(), buf); err != nil {
				b.Errorf("foreground read: %v", err)
				return
			}
			if len(lat) < cap(lat) {
				lat = append(lat, time.Since(t0))
			}
		}
	}()

	b.SetBytes(int64(rasShare))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.BeginEvacuation(rasVictim); err != nil {
			b.Fatal(err)
		}
		if err := s.EvacuateDrain(); err != nil {
			b.Fatal(err)
		}
		rp, err := s.DetachEvacuated()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Reattach(rp); err != nil {
			b.Fatal(err)
		}
		if err := s.RestripeDrain(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-fgDone

	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[len(lat)*99/100]
		b.ReportMetric(float64(p99.Nanoseconds()), "fg-p99-ns")
	}
}
