package cxlpmem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/telemetry"
	"cxlpmem/internal/units"
)

// RAS fault matrix: the full detection→recovery pipeline — patrol
// scrub finds latent poison, thresholds degrade the device, the stripe
// evacuates its leg onto spare headroom, the drained port is
// hot-removed and a replacement hot-added, and the restripe restores
// full width — is replayed once per cut point, with a recoverable CRC
// fault storm raging on the victim's link from that phase onward and
// foreground tenant traffic running throughout. This is the crashmatrix
// discipline applied to the RAS plane: instead of a power cut after
// every media write, a link-degradation onset before every pipeline
// phase.
//
// Invariants asserted after every cut:
//   - zero data loss: the static seed and the foreground writer's
//     mirror both read back byte-exact through the restriped set;
//   - no stuck tenant: every foreground op completes (the writer
//     fails the test on any error, and the run joins it);
//   - full width: N-way striping is restored with the replacement in
//     the victim's slot and no leftover spare decoders;
//   - truthful plane: the victim ends Offline with its poison count,
//     the replacement ends Healthy.

const (
	rasWays    = 3
	rasGranule = 4096
	// rasShare caps each leg's striped bytes well below its 16 MiB
	// HDM, leaving the headroom BeginEvacuation borrows for spares.
	// Small enough that all nine cuts sweep quickly under -race.
	rasShare  = uint64(512) << 10
	rasVictim = 1
)

// rasLeg bundles one stripe leg's media, endpoint and trained port.
type rasLeg struct {
	media memdev.Device
	dev   *cxl.Type3Device
	port  *cxl.RootPort
}

func rasMatrixLeg(tb testing.TB, name string) rasLeg {
	tb.Helper()
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               name + "-ddr4",
		Rate:               1333,
		Channels:           2,
		CapacityPerChannel: 8 * units.MiB,
		BatteryBacked:      true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	dev, err := cxl.NewType3(name, 0x8086, 0x0D93, media)
	if err != nil {
		tb.Fatal(err)
	}
	link, err := interconnect.NewPCIe(name+"-pcie", interconnect.KindPCIe5, 16, 0)
	if err != nil {
		tb.Fatal(err)
	}
	rp := cxl.NewRootPort(name+"-rp", link)
	if err := rp.Attach(dev); err != nil {
		tb.Fatal(err)
	}
	return rasLeg{media: media, dev: dev, port: rp}
}

func rasMatrixSet(tb testing.TB) (*cxl.InterleaveSet, []rasLeg) {
	tb.Helper()
	legs := make([]rasLeg, rasWays)
	ports := make([]*cxl.RootPort, rasWays)
	for i := range legs {
		legs[i] = rasMatrixLeg(tb, fmt.Sprintf("ras-leg%d", i))
		ports[i] = legs[i].port
	}
	s, err := cxl.NewInterleaveSetOpts("ras-stripe", cxl.InterleaveOptions{
		Base:    cxl.DefaultCXLWindowBase,
		Granule: rasGranule,
		Share:   rasShare,
	}, ports...)
	if err != nil {
		tb.Fatal(err)
	}
	return s, legs
}

// rasInjectPoison plants latent poison on the victim's media at DPAs
// above the striped share — a fault patrol must find before any demand
// access would (the data path never touches that headroom).
func rasInjectPoison(tb testing.TB, mbox *cxl.Mailbox, lines int) {
	tb.Helper()
	for i := 0; i < lines; i++ {
		var dpa [8]byte
		binary.LittleEndian.PutUint64(dpa[:], rasShare+uint64(i)*rasGranule)
		if _, status := mbox.Execute(cxl.OpInjectPoison, dpa[:]); status != cxl.MboxSuccess {
			tb.Fatalf("inject poison %d: %v", i, status)
		}
	}
}

func TestRASMatrixFaultAtEveryPhase(t *testing.T) {
	// Phase names double as cut labels: cut=k means the CRC storm on
	// the victim's link starts just before phase k; cut=len(phases) is
	// the storm-free control run.
	phases := []string{
		"patrol-scrub", "evaluate", "begin-evacuation",
		"evacuate-front", "evacuate-tail",
		"hot-remove", "hot-add", "restripe",
	}
	for cut := 0; cut <= len(phases); cut++ {
		label := "control"
		if cut < len(phases) {
			label = "storm@" + phases[cut]
		}
		t.Run(label, func(t *testing.T) { runRASMatrixCut(t, cut) })
	}
}

func runRASMatrixCut(t *testing.T, cut int) {
	s, legs := rasMatrixSet(t)
	defer s.Close()
	repl := rasMatrixLeg(t, "ras-repl")

	mbox, err := cxl.NewMailbox(legs[rasVictim].dev, "ras-fw1")
	if err != nil {
		t.Fatal(err)
	}
	rasInjectPoison(t, mbox, 3)

	// Link retries are expected under the storm, so only the error
	// counters drive degradation here.
	plane := ras.NewPlane(ras.Thresholds{MaxCorrectable: 3, MaxUncorrectable: 1}, ras.ScrubConfig{})
	if err := plane.Register("victim", legs[rasVictim].media, ras.DeviceOptions{
		Poisoned: mbox.IsPoisoned,
		Ranges: func() []memdev.Range {
			// Committed footprint: the striped share plus the headroom
			// band holding the injected poison.
			return []memdev.Range{{Base: 0, Size: rasShare + 64*rasGranule}}
		},
	}); err != nil {
		t.Fatal(err)
	}

	// For the storm-from-the-start cut, telemetry watches the victim's
	// port with sampling effectively off — the flight recorder then
	// holds only CRC-failed flits (error capture bypasses sampling) —
	// and the recorder is attached to the plane, so the Degraded
	// transition must snapshot the faulty wire history into its event.
	var victimRec *telemetry.FlightRecorder
	if cut == 0 {
		reg := telemetry.NewRegistry()
		victimRec = legs[rasVictim].port.EnableTelemetry(reg, cxl.TelemetryOptions{
			SampleN: 1 << 30, RecorderSlots: 4096,
		})
		if err := plane.AttachFlightRecorder("victim", victimRec.Dump); err != nil {
			t.Fatal(err)
		}
	}

	// Static seed over the whole window except the foreground band.
	base, total := s.Base(), rasWays*rasShare
	const fgOff, fgLen = uint64(256) << 10, 64 << 10
	seed := make([]byte, total)
	for i := range seed {
		seed[i] = byte(i*13 + 7)
	}
	if err := s.WriteBurst(base, seed); err != nil {
		t.Fatal(err)
	}

	// Foreground tenant: writes rounds of a distinct pattern into its
	// band, verifies read-own-write every round, and mirrors the last
	// committed round for the final readback check.
	var (
		mirrorMu sync.Mutex
		mirror   = make([]byte, fgLen)
		started  = make(chan struct{})
		stop     = make(chan struct{})
		fgDone   = make(chan struct{})
		once     sync.Once
	)
	copy(mirror, seed[fgOff:fgOff+fgLen])
	go func() {
		defer close(fgDone)
		buf := make([]byte, fgLen)
		out := make([]byte, fgLen)
		for round := 1; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := range buf {
				buf[i] = byte(round) ^ byte(i*31)
			}
			if err := s.WriteBurst(base+fgOff, buf); err != nil {
				t.Errorf("foreground write round %d: %v", round, err)
				return
			}
			mirrorMu.Lock()
			copy(mirror, buf)
			mirrorMu.Unlock()
			if err := s.ReadBurst(base+fgOff, out); err != nil {
				t.Errorf("foreground read round %d: %v", round, err)
				return
			}
			if !bytes.Equal(buf, out) {
				t.Errorf("foreground round %d: read-own-write mismatch", round)
				return
			}
			once.Do(func() { close(started) })
		}
	}()
	<-started

	// The storm: transient CRC corruption on the victim's link, inside
	// the LRSM retry budget, from phase `cut` onward.
	var stormMu sync.Mutex
	stormN := 0
	storm := func() {
		legs[rasVictim].port.SetFault(func(f cxl.Flit) cxl.Flit {
			stormMu.Lock()
			defer stormMu.Unlock()
			stormN++
			if stormN%5 == 3 {
				return f.Corrupt(13)
			}
			return f
		})
	}

	phases := []func() error{
		func() error { // patrol-scrub
			n, err := plane.ScrubPass("victim")
			if err == nil && n == 0 {
				return fmt.Errorf("patrol scrubbed nothing")
			}
			return err
		},
		func() error { // evaluate
			st, err := plane.Evaluate("victim")
			if err == nil && st != ras.Degraded {
				return fmt.Errorf("victim state %v after poisoned pass, want degraded", st)
			}
			return err
		},
		func() error { // begin-evacuation
			if err := plane.MarkEvacuating("victim", "draining degraded leg"); err != nil {
				return err
			}
			return s.BeginEvacuation(rasVictim)
		},
		func() error { // evacuate-front
			_, err := s.EvacuateStep(100)
			return err
		},
		func() error { return s.EvacuateDrain() }, // evacuate-tail
		func() error { // hot-remove
			rp, err := s.DetachEvacuated()
			if err != nil {
				return err
			}
			if rp != legs[rasVictim].port {
				return fmt.Errorf("detached %v, want the victim port", rp)
			}
			return plane.MarkOffline("victim", "drained and removed")
		},
		func() error { // hot-add
			if err := s.Reattach(repl.port); err != nil {
				return err
			}
			return plane.Register("replacement", repl.media, ras.DeviceOptions{})
		},
		func() error { return s.RestripeDrain() }, // restripe
	}
	for i, run := range phases {
		if i == cut {
			storm()
			if victimRec != nil {
				// Let the foreground writer trip at least one CRC fault
				// before the pipeline advances toward the Degraded
				// transition, so the dump assertion below is deterministic.
				for deadline := time.Now().Add(10 * time.Second); victimRec.Recorded() == 0; {
					if time.Now().After(deadline) {
						t.Fatal("storm produced no recorded error flit")
					}
					time.Sleep(time.Millisecond)
				}
			}
		}
		if err := run(); err != nil {
			t.Fatalf("cut=%d phase %d: %v", cut, i, err)
		}
	}
	if cut == len(phases) {
		storm() // control run: storm only after the pipeline completes
	}

	close(stop)
	<-fgDone
	legs[rasVictim].port.SetFault(nil)

	// Full width restored, replacement in the victim's slot, spares
	// unwound.
	if s.Ways() != rasWays {
		t.Errorf("ways = %d after hot-add, want %d", s.Ways(), rasWays)
	}
	if got := s.Ports()[rasVictim]; got != repl.port {
		t.Errorf("leg %d port = %v, want the replacement", rasVictim, got)
	}
	for i, leg := range legs {
		if i == rasVictim {
			continue
		}
		if n := len(leg.dev.Decoders()); n != 1 {
			t.Errorf("healthy leg %d holds %d decoders after restripe, want 1", i, n)
		}
	}
	if n := len(repl.dev.Decoders()); n != 1 {
		t.Errorf("replacement holds %d decoders, want 1", n)
	}

	// Zero data loss: static seed outside the foreground band, mirror
	// inside it.
	out := make([]byte, total)
	if err := s.ReadBurst(base, out); err != nil {
		t.Fatalf("full readback: %v", err)
	}
	if !bytes.Equal(out[:fgOff], seed[:fgOff]) {
		t.Error("static prefix corrupted across the pipeline")
	}
	if !bytes.Equal(out[fgOff+fgLen:], seed[fgOff+fgLen:]) {
		t.Error("static suffix corrupted across the pipeline")
	}
	mirrorMu.Lock()
	if !bytes.Equal(out[fgOff:fgOff+fgLen], mirror) {
		t.Error("foreground band diverged from the writer's mirror")
	}
	mirrorMu.Unlock()

	// Flight-recorder dump: the Degraded transition captured the wire
	// history, and it contains the storm's CRC-failed flits.
	if victimRec != nil {
		var degraded ras.Event
		for _, ev := range plane.Events() {
			if ev.Device == "victim" && ev.Kind == ras.EventStateChange && ev.To == ras.Degraded {
				degraded = ev
			}
		}
		if degraded.Device == "" {
			t.Fatal("no Degraded transition recorded for the victim")
		}
		if len(degraded.Flits) == 0 {
			t.Fatal("Degraded transition captured no flight-recorder dump")
		}
		errFlits := 0
		for _, f := range degraded.Flits {
			if f.Err {
				errFlits++
			}
		}
		if errFlits == 0 {
			t.Error("flight dump at Degraded carries no CRC-failed flits from the storm")
		}
	}

	// Truthful plane: the victim's history survived, the replacement
	// starts clean.
	if h := plane.Health("victim"); h.State != ras.Offline || h.PoisonedLines != 3 {
		t.Errorf("victim health = %v/%d poisoned, want offline/3", h.State, h.PoisonedLines)
	}
	if st, err := plane.Evaluate("replacement"); err != nil || st != ras.Healthy {
		t.Errorf("replacement state = %v (%v), want healthy", st, err)
	}
}
