// Command fabricctl drives the CXL fabric manager the way an operator
// would drive a real fabric-management appliance: list the pool, grant
// and release tenant capacity, rebalance shares, force-reclaim an
// unresponsive tenant, and watch capacity events stream by. Like the
// other commands in this repository it is self-contained: it assembles
// a simulated elastic pool (cluster.NewElastic) and runs the requested
// operation against it, printing the fabric state before and after.
//
// Usage:
//
//	fabricctl [flags] list
//	fabricctl [flags] grant     -host N -mib M
//	fabricctl [flags] release   -host N -mib M
//	fabricctl [flags] rebalance -targets 5,1,2,2     (MiB per host)
//	fabricctl [flags] reclaim   -host N
//	fabricctl [flags] health
//	fabricctl [flags] evacuate  -pool NAME
//	fabricctl [flags] watch-events
//	fabricctl [flags] inject    SITE ACTION -seed S -nth N -every E -count C -delay D
//	fabricctl [flags] top       -iterations N -interval D -serve ADDR
//	fabricctl [flags] trace     -port N -n FLITS
//	fabricctl [flags] tier      -pages N -hotset H -epochs E -budget B
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fabric"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabricctl: ")
	hosts := flag.Int("hosts", 4, "tenant host count")
	poolMiB := flag.Int("pool", 16, "appliance pool capacity (MiB)")
	quotaMiB := flag.Int("quota", 8, "per-tenant address-space quota (MiB)")
	initialMiB := flag.Int("initial", 2, "initial grant per tenant (MiB)")
	granuleKiB := flag.Int("granule", 256, "fabric extent granule (KiB)")
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		log.Fatal("missing subcommand: list | grant | release | rebalance | reclaim | health | evacuate | watch-events | inject | top | trace | tier")
	}

	e, err := cluster.NewElastic(cluster.ElasticConfig{
		Hosts:   *hosts,
		Pool:    units.Size(*poolMiB) * units.MiB,
		Quota:   units.Size(*quotaMiB) * units.MiB,
		Initial: units.Size(*initialMiB) * units.MiB,
		Granule: units.Size(*granuleKiB) * units.KiB,
	})
	if err != nil {
		log.Fatal(err)
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "list":
		fmt.Print(e.Describe())
		fmt.Println()
		fmt.Print(e.Fabric.Describe())
	case "grant":
		host, size := hostSizeArgs(args)
		fmt.Printf("before: host%d holds %v, pool free %v\n", host, e.Capacity(host), e.Fabric.Remaining())
		exts, err := e.Grow(host, size)
		if err != nil {
			log.Fatal(err)
		}
		for _, x := range exts {
			fmt.Println("granted:", x)
		}
		verifyExtent(e, host, exts[0])
		fmt.Printf("after:  host%d holds %v, pool free %v\n", host, e.Capacity(host), e.Fabric.Remaining())
	case "release":
		host, size := hostSizeArgs(args)
		fmt.Printf("before: host%d holds %v, pool free %v\n", host, e.Capacity(host), e.Fabric.Remaining())
		released, err := e.Shrink(host, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("released %v (whole extents)\n", released)
		fmt.Printf("after:  host%d holds %v, pool free %v\n", host, e.Capacity(host), e.Fabric.Remaining())
	case "rebalance":
		fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
		spec := fs.String("targets", "", "per-host target capacities in MiB, comma-separated")
		must(fs.Parse(args))
		targets, err := parseTargets(*spec, len(e.Hosts))
		if err != nil {
			log.Fatal(err)
		}
		for i := range e.Hosts {
			fmt.Printf("before: host%d %v\n", i, e.Capacity(i))
		}
		if err := e.Rebalance(targets); err != nil {
			log.Fatal(err)
		}
		for i := range e.Hosts {
			fmt.Printf("after:  host%d %v\n", i, e.Capacity(i))
		}
	case "reclaim":
		fs := flag.NewFlagSet("reclaim", flag.ExitOnError)
		host := fs.Int("host", 0, "host index")
		must(fs.Parse(args))
		revoked, err := e.Fabric.ForceReclaim(fmt.Sprintf("host%d", *host))
		if err != nil {
			log.Fatal(err)
		}
		for _, x := range revoked {
			fmt.Println("revoked:", x)
		}
		// Demonstrate the poison: the tenant's next access fails.
		if len(revoked) > 0 {
			h := e.Hosts[*host]
			buf := make([]byte, 4096)
			err := h.IO.ReadBurst(h.Window.Base+revoked[0].DPA, buf)
			fmt.Printf("tenant access after reclaim: %v\n", err)
		}
		fmt.Printf("pool free: %v (reclaimed bytes immediately re-grantable)\n", e.Fabric.Remaining())
	case "health":
		runHealth(e)
	case "evacuate":
		fs := flag.NewFlagSet("evacuate", flag.ExitOnError)
		pool := fs.String("pool", "", "pool to drain (default: primary)")
		must(fs.Parse(args))
		runEvacuate(e, *pool)
	case "watch-events":
		watchEvents(e)
	case "inject":
		runInject(e, args)
	case "top":
		runTop(e, args)
	case "trace":
		runTrace(e, args)
	case "tier":
		runTier(e, args)
	default:
		log.Fatalf("unknown subcommand %q", cmd)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// hostSizeArgs parses the shared -host/-mib pair.
func hostSizeArgs(args []string) (int, units.Size) {
	fs := flag.NewFlagSet("op", flag.ExitOnError)
	host := fs.Int("host", 0, "host index")
	mib := fs.Int("mib", 1, "size in MiB")
	must(fs.Parse(args))
	return *host, units.Size(*mib) * units.MiB
}

func parseTargets(spec string, hosts int) ([]units.Size, error) {
	if spec == "" {
		return nil, fmt.Errorf("rebalance needs -targets")
	}
	parts := strings.Split(spec, ",")
	if len(parts) != hosts {
		return nil, fmt.Errorf("got %d targets for %d hosts", len(parts), hosts)
	}
	out := make([]units.Size, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("target %d: %w", i, err)
		}
		out[i] = units.Size(v) * units.MiB
	}
	return out, nil
}

// verifyExtent writes and reads one burst through the host's root port
// against a freshly granted extent — grant output an operator can
// trust.
func verifyExtent(e *cluster.Elastic, host int, x fabric.ExtentInfo) {
	h := e.Hosts[host]
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	addr := h.Window.Base + x.DPA
	if err := h.IO.WriteBurst(addr, buf); err != nil {
		log.Fatalf("verify write: %v", err)
	}
	got := make([]byte, len(buf))
	if err := h.IO.ReadBurst(addr, got); err != nil {
		log.Fatalf("verify read: %v", err)
	}
	for i := range got {
		if got[i] != buf[i] {
			log.Fatalf("verify mismatch at byte %d", i)
		}
	}
	fmt.Println("verified: burst write/read through the root port OK")
}

// enableRAS wires the pool's RAS plane with thresholds low enough that
// the demo scenarios trip them.
func enableRAS(e *cluster.Elastic) *ras.Plane {
	p, err := e.EnableRAS(ras.Thresholds{
		MaxCorrectable:   2,
		MaxUncorrectable: 1,
		MaxLinkRetries:   64,
	}, ras.ScrubConfig{})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// printHealth renders the plane's per-device table.
func printHealth(p *ras.Plane) {
	fmt.Printf("%-16s %-11s %12s %14s %12s %10s %7s\n",
		"DEVICE", "STATE", "CORRECTABLE", "UNCORRECTABLE", "LINKRETRIES", "POISONED", "PASSES")
	for _, name := range p.Devices() {
		h := p.Health(name)
		fmt.Printf("%-16s %-11s %12d %14d %12d %10d %7d\n",
			h.Device, h.State, h.Counters.Correctable, h.Counters.Uncorrectable,
			h.Counters.LinkRetries, h.PoisonedLines, h.Passes)
	}
}

// runHealth demonstrates the detection half of the RAS loop: patrol
// scrub walks every device, a latent poisoned line injected behind
// host0's back is caught and counted correctable, and the threshold
// policy degrades the tenant device.
func runHealth(e *cluster.Elastic) {
	p := enableRAS(e)
	fmt.Println("── baseline patrol pass")
	for _, name := range p.Devices() {
		if _, err := p.ScrubPass(name); err != nil {
			log.Fatalf("scrub %s: %v", name, err)
		}
	}
	printHealth(p)

	fmt.Println("── injecting 3 latent poisoned lines into host0's first extent")
	exts, err := e.Fabric.Extents("host0")
	if err != nil || len(exts) == 0 {
		log.Fatalf("host0 extents: %v", err)
	}
	mbox := e.Hosts[0].Tenant.Mailbox()
	for i := 0; i < 3; i++ {
		var dpa [8]byte
		binary.LittleEndian.PutUint64(dpa[:], exts[0].DPA+uint64(i)*4096)
		if _, status := mbox.Execute(cxl.OpInjectPoison, dpa[:]); status != cxl.MboxSuccess {
			log.Fatalf("inject poison: %v", status)
		}
	}

	fmt.Println("── patrol pass after injection")
	if _, err := p.ScrubPass("tenant:host0"); err != nil {
		log.Fatalf("scrub: %v", err)
	}
	if st, err := p.Evaluate("tenant:host0"); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("policy: tenant:host0 -> %v\n", st)
	}
	printHealth(p)
	for _, ev := range p.Events() {
		fmt.Println("ras event:", ev)
	}
}

// runEvacuate demonstrates the recovery half: a spare pool is added,
// the named (default: primary) pool is drained onto it under a live
// write/readback workload, and the tenants come out with every byte
// intact on the spare.
func runEvacuate(e *cluster.Elastic, pool string) {
	p := enableRAS(e)
	if pool == "" {
		pool = e.MLD.Name()
	}
	spareSize := 2 * e.TotalPooled()
	if _, err := e.AddSparePool("spare", spareSize); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("added spare pool (%v); pools now: %v\n", spareSize, e.Fabric.Pools())

	// Seed a pattern through host0 so the move is checkable.
	h := e.Hosts[0]
	exts, err := e.Fabric.Extents("host0")
	if err != nil || len(exts) == 0 {
		log.Fatalf("host0 extents: %v", err)
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	if err := h.IO.WriteBurst(h.Window.Base+exts[0].DPA, buf); err != nil {
		log.Fatalf("seed write: %v", err)
	}

	moved, err := e.EvacuatePool(p, pool)
	if err != nil {
		log.Fatalf("evacuate: %v (moved %d)", err, moved)
	}
	fmt.Printf("evacuated %d extents off %s\n", moved, pool)

	got := make([]byte, len(buf))
	if err := h.IO.ReadBurst(h.Window.Base+exts[0].DPA, got); err != nil {
		log.Fatalf("readback: %v", err)
	}
	for i := range got {
		if got[i] != buf[i] {
			log.Fatalf("readback mismatch at byte %d after evacuation", i)
		}
	}
	fmt.Println("verified: tenant data intact through the root port after the move")
	printHealth(p)
	for _, ev := range p.Events() {
		fmt.Println("ras event:", ev)
	}
}

// watchEvents runs a scripted capacity scenario against the raw
// fabric API and streams every tenant's events as they arrive — what
// an operator console tailing the fabric would show. The host agents
// answer each event through the real mailbox path, and those answers
// are logged too.
func watchEvents(e *cluster.Elastic) {
	p := enableRAS(e)
	type step struct {
		desc string
		run  func() error
	}
	script := []step{
		{"grant 1 MiB to host0", func() error { _, err := e.Fabric.Grant("host0", units.MiB); return err }},
		{"request release of 1 MiB from host0", func() error { _, err := e.Fabric.RequestRelease("host0", units.MiB); return err }},
		{"force-reclaim host1", func() error { _, err := e.Fabric.ForceReclaim("host1"); return err }},
		{"patrol scrub all devices", func() error {
			for _, name := range p.Devices() {
				if _, err := p.ScrubPass(name); err != nil {
					return err
				}
				if _, err := p.Evaluate(name); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	for _, s := range script {
		fmt.Println("──", s.desc)
		if err := s.run(); err != nil {
			log.Fatal(err)
		}
		// Host agents: drain, print, answer.
		for _, h := range e.Hosts {
			mbox := h.Tenant.Mailbox()
			for _, ev := range h.Tenant.Events() {
				fmt.Printf("   event -> %s: %v\n", h.Tenant.Name(), ev)
				switch ev.Type {
				case fabric.EventAddCapacity:
					if _, status := mbox.Execute(cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ev.Extent.DCD(), true)); status != cxl.MboxSuccess {
						log.Fatalf("accept: %v", status)
					}
					fmt.Printf("   %s accepted ext#%d via mailbox\n", h.Tenant.Name(), ev.Extent.Tag)
				case fabric.EventReleaseRequest, fabric.EventForcedReclaim:
					if _, status := mbox.Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(ev.Extent.DCD())); status != cxl.MboxSuccess {
						log.Fatalf("release: %v", status)
					}
					fmt.Printf("   %s released ext#%d via mailbox\n", h.Tenant.Name(), ev.Extent.Tag)
				}
			}
		}
		// RAS feed: plane events interleave with the capacity events so
		// the operator sees scrub and health transitions in stream order.
		for _, ev := range p.Events() {
			fmt.Printf("   ras -> %s: %s\n", ev.Device, ev.Detail)
		}
		fmt.Printf("   pool free: %v\n", e.Fabric.Remaining())
	}
}
