package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/telemetry"
	"cxlpmem/internal/tiering"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// runTier demonstrates the memtier policy plane from both ends: the
// hybrid DDR5/CXL/DCPMM hierarchy with the background daemon converging
// a zipfian workload out of cold start, and the per-tenant memory-type
// masks steering elastic-pool grants onto matching media. Ends with the
// tiering_* telemetry the registry exposes.
func runTier(e *cluster.Elastic, args []string) {
	fs := flag.NewFlagSet("tier", flag.ExitOnError)
	pages := fs.Int("pages", 16, "managed pages (2 MiB each)")
	hotset := fs.Int("hotset", 4, "hot-set size == fast-tier pages")
	epochs := fs.Int("epochs", 8, "policy epochs to run")
	budget := fs.Int("budget", 8, "migration budget per epoch (pages)")
	samples := fs.Int("samples", 2000, "zipfian accesses per epoch")
	must(fs.Parse(args))
	if *hotset >= *pages {
		log.Fatal("hotset must be smaller than pages")
	}

	machine, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	mgr, hybrid, err := tiering.NewDDR5CXLDCPMMHierarchy(machine, *hotset, *pages/2, *pages)
	if err != nil {
		log.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	mgr.RegisterMetrics(reg)
	d, err := tiering.NewDaemon(mgr, tiering.DaemonConfig{BudgetPages: *budget})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	d.RegisterMetrics(reg)
	c0, err := hybrid.Core(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("── memtier daemon: %d pages cold-started far, zipfian hot set of %d\n", *pages, *hotset)
	ids := make([]tiering.PageID, *pages)
	for i := range ids {
		if ids[i], err = mgr.Alloc(); err != nil {
			log.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(*pages-1))
	buf := make([]byte, 64)
	drive := func() {
		for i := 0; i < *samples; i++ {
			p := int(zipf.Uint64())
			if err := mgr.Read(ids[p], buf, int64((i%64)*64)); err != nil {
				log.Fatal(err)
			}
		}
	}

	drive()
	static, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static far placement: avg access latency %v\n\n", static)
	fmt.Printf("%-6s %-9s %-8s %-7s %-9s %-14s %s\n",
		"EPOCH", "PROMOTED", "DEMOTED", "BUDGET", "DEFERRED", "PAGES/TIER", "EPOCH-TIME")
	for i := 0; i < *epochs; i++ {
		drive()
		st := d.RunEpoch()
		tiers := mgr.Stats().PagesPerTier
		fmt.Printf("%-6d %-9d %-8d %-7d %-9d %-14s %v\n",
			st.Epoch, st.Promoted, st.Demoted, st.BudgetUsed, st.Deferred,
			fmt.Sprintf("%v", tiers), st.Duration.Round(1000))
	}
	drive()
	tiered, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaemon placement: avg access latency %v (static far was %v)\n", tiered, static)
	fmt.Println("page placement (hot set first):")
	for i, id := range ids {
		tier, err := mgr.TierOf(id)
		if err != nil {
			log.Fatal(err)
		}
		tag := ""
		if i < *hotset {
			tag = " *hot*"
		}
		fmt.Printf("  page %-3d tier %d (%s)%s\n", id, tier, mgr.Tiers()[tier].Name, tag)
	}

	fmt.Println("\n── per-tenant memory-type masks over the elastic pool")
	if _, err := e.AddPMemPool("cold", 2*e.TotalPooled()); err != nil {
		log.Fatal(err)
	}
	if err := e.SetMemTypes(0, "dram,cxl"); err != nil {
		log.Fatal(err)
	}
	if err := e.SetMemTypes(1, "cxl,pmem"); err != nil {
		log.Fatal(err)
	}
	for _, host := range []int{0, 1} {
		mask, _ := e.MemTypes(host)
		exts, err := e.Grow(host, units.MiB)
		if err != nil {
			log.Fatal(err)
		}
		pools := map[string]int{}
		for _, x := range exts {
			pools[x.Pool]++
		}
		fmt.Printf("host%d mask=%-9s grew 1 MiB -> pools %v\n", host, mask, pools)
	}

	fmt.Println("\n── tiering_* telemetry")
	for _, s := range reg.Gather() {
		if !strings.HasPrefix(s.Name, "tiering_") {
			continue
		}
		if s.Hist != nil {
			fmt.Printf("%s%s count=%d p50=%dns p99=%dns\n", s.Name, s.Labels,
				s.Hist.Count, s.Hist.Quantile(0.5), s.Hist.Quantile(0.99))
			continue
		}
		fmt.Printf("%s%s = %v\n", s.Name, s.Labels, s.Value)
	}
}
