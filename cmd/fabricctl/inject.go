package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"cxlpmem/internal/chaos"
	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fabric"
	"cxlpmem/internal/units"
)

// runInject is the operator's front end to the chaos engine:
//
//	fabricctl inject <site> <action> [-seed S] [-nth N] [-every E] [-count C] [-delay D]
//
// It arms a single-rule plan against the demo pool's host0 leg (port,
// link, tenant mailbox, media), drives foreground traffic through the
// faulted path, and prints the deterministic fire schedule plus the
// detection/recovery evidence an operator would look for: link retries
// and retrains, command timeouts, RAS health.
func runInject(e *cluster.Elastic, args []string) {
	if len(args) < 2 {
		log.Fatal("usage: fabricctl inject <site> <action> [-seed S] [-nth N] [-every E] [-count C] [-delay D]")
	}
	site, err := chaos.ParseSite(args[0])
	if err != nil {
		log.Fatal(err)
	}
	action, err := chaos.ParseAction(args[1])
	if err != nil {
		log.Fatal(err)
	}
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	seed := fs.Uint64("seed", 0xC0FFEE, "plan seed (same seed, same schedule)")
	nth := fs.Uint64("nth", 0, "fire on the Nth matching event")
	every := fs.Uint64("every", 0, "fire on every Eth matching event")
	count := fs.Uint64("count", 0, "total fire cap (0 = unlimited)")
	delay := fs.Duration("delay", 0, "action duration where one applies")
	must(fs.Parse(args[2:]))

	rule := chaos.Rule{
		Site: site, Action: action,
		Trigger: chaos.Trigger{Nth: *nth, Every: *every, Count: *count},
		Delay:   *delay,
	}
	// Untriggered rules take a per-action default so the demo always
	// fires something observable.
	if rule.Trigger.Nth == 0 && rule.Trigger.Every == 0 {
		switch action {
		case chaos.ActFlap, chaos.ActRemove:
			rule.Trigger.Nth = 9
		case chaos.ActStall, chaos.ActGarble:
			rule.Trigger.Every = 1
		default:
			rule.Trigger.Every = 7
		}
	}
	if rule.Trigger.Count == 0 && action != chaos.ActRemove {
		rule.Trigger.Count = 8
	}

	h := e.Hosts[0]
	exts, err := e.Fabric.Extents(h.Tenant.Name())
	if err != nil || len(exts) == 0 {
		log.Fatalf("host0 extents: %v", err)
	}
	if site == chaos.SiteMedia {
		rule.Trigger.AddrLo = exts[0].DPA
		rule.Trigger.AddrHi = exts[0].DPA + uint64(exts[0].Size)
	}

	plan := chaos.Plan{Seed: *seed, Rules: []chaos.Rule{rule}}
	eng, err := chaos.NewEngine(plan)
	if err != nil {
		log.Fatal(err)
	}
	mbox := h.Tenant.Mailbox()
	eng.AttachPort(h.Port)
	eng.AttachSwitch(e.Switch)
	eng.AttachMailbox(h.Tenant.Name(), mbox)
	eng.AttachMedia(h.Tenant.Name(), func(dpa uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], dpa)
		if _, st := mbox.Execute(cxl.OpInjectPoison, b[:]); st != cxl.MboxSuccess {
			return fmt.Errorf("inject poison: %v", st)
		}
		return nil
	})
	defer eng.Disarm()

	// Backoff on, so retries under the fault are visibly paced, and a
	// command deadline so a stalled mailbox cannot hang the agent.
	h.Port.SetOptions(cxl.PortOptions{RetryBackoff: 50 * time.Microsecond})
	e.SetCommandDeadline(25 * time.Millisecond)

	before := h.Port.Stats()
	fmt.Printf("armed: %s/%s seed=%#x trigger{nth:%d every:%d count:%d}\n",
		site, action, *seed, rule.Trigger.Nth, rule.Trigger.Every, rule.Trigger.Count)

	switch site {
	case chaos.SitePort, chaos.SiteLink, chaos.SiteSnoop:
		injectDriveWire(e, h, exts[0])
	case chaos.SiteMailbox, chaos.SiteFabric:
		injectDriveCommands(e)
	case chaos.SiteMedia:
		injectDriveMedia(e, eng, mbox)
	}

	after := h.Port.Stats()
	fmt.Println("── fault schedule (deterministic for this seed)")
	if s := eng.ScheduleString(); s != "" {
		fmt.Print(s)
	} else {
		fmt.Println("(no rule fired)")
	}
	fmt.Printf("── port counters: retries +%d, retrains +%d, timeouts +%d, link %v\n",
		after.Retries-before.Retries, after.Retrains-before.Retrains,
		after.Timeouts-before.Timeouts, h.Port.State())
}

// injectDriveWire pushes foreground bursts through the faulted leg and
// reports every outcome — recovered writes under corruption, parked
// writes across a flap, fail-fast ErrLinkDown after a surprise remove.
func injectDriveWire(e *cluster.Elastic, h *cluster.ElasticHost, x fabric.ExtentInfo) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i * 11)
	}
	okN, downN := 0, 0
	var firstErr error
	for n := 0; n < 64; n++ {
		addr := h.Window.Base + x.DPA + uint64(n%16)*4096
		err := h.IO.WriteBurst(addr, buf)
		if err == nil {
			err = h.IO.ReadBurst(addr, buf)
		}
		switch {
		case err == nil:
			okN++
		case errors.Is(err, cxl.ErrLinkDown):
			downN++
			if firstErr == nil {
				firstErr = err
			}
		default:
			log.Fatalf("foreground op %d: unrecovered error: %v", n, err)
		}
	}
	fmt.Printf("drove 64 round trips: %d recovered/clean, %d failed fast after removal\n", okN, downN)
	if firstErr != nil {
		fmt.Println("first post-removal outcome:", firstErr)
	}
}

// injectDriveCommands exercises the capacity-agent command plane under
// the armed mailbox/fabric fault.
func injectDriveCommands(e *cluster.Elastic) {
	for n := 0; n < 4; n++ {
		_, err := e.Grow(0, 256*units.KiB)
		if err != nil {
			fmt.Printf("grow %d: bounded failure: %v\n", n, err)
			continue
		}
		fmt.Printf("grow %d: ok (host0 now %v)\n", n, e.Capacity(0))
	}
}

// injectDriveMedia pulses the latent-poison rule, then shows patrol
// scrub detecting what was planted.
func injectDriveMedia(e *cluster.Elastic, eng *chaos.Engine, mbox *cxl.Mailbox) {
	for n := 0; n < 16; n++ {
		eng.Pulse()
	}
	p := enableRAS(e)
	name := "tenant:host0"
	if _, err := p.ScrubPass(name); err != nil {
		log.Fatalf("scrub: %v", err)
	}
	fmt.Printf("patrol scrub found %d poisoned line(s)\n", p.Health(name).PoisonedLines)
	if st, err := p.Evaluate(name); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("policy: %s -> %v\n", name, st)
	}
	printHealth(p)
}
