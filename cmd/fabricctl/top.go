package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/telemetry"
	"cxlpmem/internal/units"
)

// runTop is the fleet dashboard: it enables the telemetry plane over
// the whole pool, keeps background tenant traffic flowing so the
// figures move, and renders a per-port / per-tenant table every
// interval — what an operator watching a fabric appliance would see.
// With -serve the same registry is exported as Prometheus text and
// JSON for scraping while the table runs.
func runTop(e *cluster.Elastic, args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	iterations := fs.Int("iterations", 0, "refreshes before exiting (0 = forever)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	serve := fs.String("serve", "", "also serve /metrics on this address (e.g. 127.0.0.1:0)")
	driveMiB := fs.Int("drive", 1, "background traffic per host per refresh (MiB, 0 = none)")
	must(fs.Parse(args))

	reg := telemetry.NewRegistry()
	e.EnableTelemetry(reg, cxl.TelemetryOptions{SampleN: 8})
	if *serve != "" {
		srv, err := telemetry.Serve(*serve, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (Prometheus), /metrics.json, /debug/pprof\n", srv.Addr())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if *driveMiB > 0 {
		for i := range e.Hosts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := e.Drive(i, units.Size(*driveMiB)*units.MiB); err != nil {
						log.Printf("host%d traffic: %v", i, err)
						return
					}
				}
			}(i)
		}
	}

	for it := 0; *iterations == 0 || it < *iterations; it++ {
		time.Sleep(*interval)
		renderTop(e, reg)
	}
	close(stop)
	wg.Wait()
}

// labelVal extracts one value from a rendered label set like
// `{port="rp-h0",op="read"}`.
func labelVal(labels, key string) string {
	i := strings.Index(labels, key+`="`)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(key)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

func renderTop(e *cluster.Elastic, reg *telemetry.Registry) {
	samples := reg.Gather()
	portCtr := map[string]map[string]float64{}   // port -> metric -> value
	tenantCtr := map[string]map[string]float64{} // tenant -> metric -> value
	hists := map[string]*telemetry.HistSnapshot{}
	var poolFree float64
	for _, s := range samples {
		switch {
		case s.Name == "cxl_port_latency_ns":
			hists[labelVal(s.Labels, "port")+"/"+labelVal(s.Labels, "op")] = s.Hist
		case strings.HasPrefix(s.Name, "cxl_port_"):
			p := labelVal(s.Labels, "port")
			if portCtr[p] == nil {
				portCtr[p] = map[string]float64{}
			}
			portCtr[p][s.Name] = s.Value
		case strings.HasPrefix(s.Name, "fabric_tenant_"):
			t := labelVal(s.Labels, "tenant")
			if tenantCtr[t] == nil {
				tenantCtr[t] = map[string]float64{}
			}
			tenantCtr[t][s.Name] = s.Value
		case s.Name == "fabric_pool_remaining_bytes":
			poolFree = s.Value
		}
	}

	now := time.Now().Format("15:04:05")
	fmt.Printf("── fabricctl top @ %s — pool free %v\n", now, units.Size(poolFree))
	fmt.Printf("%-10s %10s %9s %10s %12s %12s %12s\n",
		"PORT", "ISSUED", "RETRIES", "DOORBELLS", "p50(burst)", "p99(burst)", "p99(read)")
	for _, p := range sortedKeys(portCtr) {
		c := portCtr[p]
		fmt.Printf("%-10s %10.0f %9.0f %10.0f %12s %12s %12s\n",
			p, c["cxl_port_issued_total"], c["cxl_port_retries_total"], c["cxl_port_doorbells_total"],
			quantileUS(hists[p+"/burst"], 0.5), quantileUS(hists[p+"/burst"], 0.99), quantileUS(hists[p+"/read"], 0.99))
	}
	fmt.Printf("%-10s %12s %12s %14s %14s\n", "TENANT", "ACTIVE", "QUOTA", "READ BYTES", "WRITE BYTES")
	for _, t := range sortedKeys(tenantCtr) {
		c := tenantCtr[t]
		fmt.Printf("%-10s %12v %12v %14v %14v\n",
			t, units.Size(c["fabric_tenant_active_bytes"]), units.Size(c["fabric_tenant_quota_bytes"]),
			units.Size(c["fabric_tenant_read_bytes_total"]), units.Size(c["fabric_tenant_write_bytes_total"]))
	}
}

func sortedKeys(m map[string]map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// quantileUS renders a latency quantile in microseconds.
func quantileUS(h *telemetry.HistSnapshot, q float64) string {
	if h == nil || h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fµs", float64(h.Quantile(q))/1e3)
}

// runTrace drives traffic through one host's port with every
// transaction sampled, then plays back the port's flight recorder —
// the flit-level wire history an engineer would pull when a link is
// misbehaving.
func runTrace(e *cluster.Elastic, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	port := fs.Int("port", 0, "host index whose port to trace")
	n := fs.Int("n", 32, "newest flits to print")
	mib := fs.Int("mib", 1, "traffic to drive before dumping (MiB)")
	must(fs.Parse(args))
	if *port < 0 || *port >= len(e.Hosts) {
		log.Fatalf("port %d outside 0..%d", *port, len(e.Hosts)-1)
	}

	reg := telemetry.NewRegistry()
	e.EnableTelemetry(reg, cxl.TelemetryOptions{SampleN: 1})
	if *mib > 0 {
		if _, err := e.Drive(*port, units.Size(*mib)*units.MiB); err != nil {
			log.Fatal(err)
		}
	}
	h := e.Hosts[*port]
	rec := h.Port.FlightRecorder()
	flits := rec.Dump()
	fmt.Printf("port %s: %d flits recorded, newest %d:\n", h.Port.Name(), rec.Recorded(), min(*n, len(flits)))
	if len(flits) > *n {
		flits = flits[len(flits)-*n:]
	}
	for _, f := range flits {
		fmt.Println(" ", f.String())
	}
}
