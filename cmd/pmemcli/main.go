// Command pmemcli is a pmempool-style utility over the simulated
// machine: it creates a pool on a chosen /mnt/pmemN mount, fills it
// with objects, runs the consistency check, demonstrates transaction
// recovery after a simulated power failure, and prints pool statistics.
// (The machine is simulated in-process, so the demo performs the whole
// lifecycle in one invocation.)
package main

import (
	"flag"
	"fmt"
	"log"

	"cxlpmem/internal/core"
	"cxlpmem/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pmemcli: ")
	var (
		node = flag.Int("node", 2, "NUMA node for the pool (2 = CXL)")
		size = flag.Int64("size", 16<<20, "pool size in bytes")
	)
	flag.Parse()

	rt, err := core.NewSetup1(topology.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	id := topology.NodeID(*node)
	mnt, err := rt.MountFor(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mount %s: persistent=%v size=%d free=%d\n", mnt.Name(), mnt.Persistent(), mnt.Size(), mnt.Free())

	pool, err := rt.CreatePool(id, "demo.obj", "pmemcli-demo", *size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created pool %s/demo.obj layout=%q id=%#x\n", mnt.Name(), pool.Layout(), pool.PoolID())

	// Allocate a few objects and commit one transactional update.
	var last string
	for i := 0; i < 5; i++ {
		oid, err := pool.Alloc(4096)
		if err != nil {
			log.Fatal(err)
		}
		if err := pool.SetUint64(oid, 0, uint64(1000+i)); err != nil {
			log.Fatal(err)
		}
		last = oid.String()
	}
	fmt.Println("allocated 5 objects, last:", last)

	rep, err := pool.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("check: %d blocks (%d allocated, %d free, %d bytes free)\n",
		rep.Blocks, rep.AllocatedBlocks, rep.FreeBlocks, rep.FreeBytes)

	objs, err := pool.Objects()
	if err != nil {
		log.Fatal(err)
	}
	live, err := pool.LiveBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objects: %d live, %d bytes\n", len(objs), live)
	for _, o := range objs {
		fmt.Printf("  %v %6d bytes root=%v\n", o.OID, o.Size, o.IsRoot)
	}

	// Torn-transaction demo: crash mid-transaction, reopen, verify
	// rollback.
	oid, err := pool.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := pool.SetUint64(oid, 0, 0xAAAA); err != nil {
		log.Fatal(err)
	}
	tx, err := pool.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 8); err != nil {
		log.Fatal(err)
	}
	v, err := pool.View(oid, 8)
	if err != nil {
		log.Fatal(err)
	}
	v[0] = 0xBB // torn write, never committed
	if err := pool.Persist(oid, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulating power failure mid-transaction...")
	pool.SimulateCrash()

	re, err := rt.OpenPool(id, "demo.obj", "pmemcli-demo")
	if err != nil {
		log.Fatalf("recovery failed: %v (node %d persistent=%v)", err, id, mnt.Persistent())
	}
	got, err := re.GetUint64(oid, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: value=%#x (rolled back: %v)\n", got, got == 0xAAAA)

	s := re.Stats()
	fmt.Printf("stats: persists=%d persist-bytes=%d commits=%d aborts=%d allocs=%d\n",
		s.Persists.Load(), s.PersistBytes.Load(), s.TxCommits.Load(), s.TxAborts.Load(), s.Allocs.Load())
}
