// Command cxlinfo enumerates the simulated CXL hierarchy and machine
// topology, in the spirit of `cxl list` + `numactl --hardware` on the
// paper's Setup #1.
package main

import (
	"flag"
	"fmt"
	"log"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/topology"
)

// c0pre fetches core 0 or dies (display tool).
func c0pre(m *topology.Machine) topology.Core {
	c, err := m.Core(0)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cxlinfo: ")
	setup2 := flag.Bool("setup2", false, "describe Setup #2 instead of Setup #1")
	flag.Parse()

	if *setup2 {
		m, err := topology.Setup2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(m.Describe())
		return
	}

	m, card, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Describe())
	fmt.Println()

	n2, err := m.Node(2)
	if err != nil {
		log.Fatal(err)
	}
	h := cxl.Hierarchy{Ports: []*cxl.RootPort{n2.Port}, Windows: []cxl.MemWindow{n2.Window}}
	fmt.Print(h.Describe())
	fmt.Println()

	fmt.Println("prototype:", card)
	fmt.Printf("  link raw peak:       %s\n", card.TheoreticalLinkPeak())
	fmt.Printf("  link effective cap:  %s\n", card.EffectiveCap())
	fmt.Printf("  media profile:       read %s, write %s, idle %s\n",
		card.Media().Profile().ReadPeak, card.Media().Profile().WritePeak, card.Media().Profile().IdleLatency)
	sig, err := card.ExecIO(fpga.CmdIdent)
	if err != nil {
		log.Fatal(err)
	}
	bat, err := card.ExecIO(fpga.CmdBatteryStatus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  user-streaming ident: %#x, battery: %d\n", sig, bat)

	idRaw, status := card.Mailbox().Execute(cxl.OpIdentifyMemDevice, nil)
	if status != cxl.MboxSuccess {
		log.Fatalf("mailbox identify: %v", status)
	}
	id, err := cxl.DecodeIdentity(idRaw)
	if err != nil {
		log.Fatal(err)
	}
	hRaw, status := card.Mailbox().Execute(cxl.OpGetHealthInfo, nil)
	if status != cxl.MboxSuccess {
		log.Fatalf("mailbox health: %v", status)
	}
	health, err := cxl.DecodeHealth(hRaw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mailbox identify:     fw %s, %d B HDM, persistent=%v\n", id.FirmwareRev, id.TotalCap, id.Persistent)
	fmt.Printf("  mailbox health:       media-ok=%v battery-ok=%v poisoned=%d\n", health.MediaOK, health.BatteryOK, health.PoisonedLines)

	fmt.Println("\nloaded latency, core 0 -> CXL node (Copy mix):")
	eng := perf.New(m)
	curve, err := eng.LatencyBandwidthCurve(c0pre(m), 2, perf.Mix{ReadFrac: 0.5}, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range curve {
		fmt.Printf("  offered %8.2f GB/s -> %s\n", pt.Offered.GBps(), pt.Latency)
	}

	fmt.Println("\naccess latencies (core 0):")
	c0, err := m.Core(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range m.Nodes {
		lat, err := m.AccessLatency(c0, n.ID)
		if err != nil {
			log.Fatal(err)
		}
		path, err := m.Path(c0, n.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node%d (%s): %s via %s\n", n.ID, n.Kind, lat, path)
	}
}
