// Command streamer is the paper's released tool (§1.4): it regenerates
// every figure and table of the evaluation over the simulated setups.
//
// Usage:
//
//	streamer -figure 5        # one figure (5=Scale 6=Add 7=Copy 8=Triad)
//	streamer -all             # all four figures
//	streamer -csv             # emit CSV instead of aligned text
//	streamer -table 1|2|dcpmm # the qualitative/comparison tables
//	streamer -claims          # check every §4 claim against the data
//	streamer -dataflow        # Figure 9 data-flow descriptions
//	streamer -run             # a real STREAM/STREAM-PMem execution
//	streamer -n 1000000       # array elements for -run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cxlpmem/internal/core"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/streamer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamer: ")
	var (
		figure   = flag.Int("figure", 0, "regenerate one figure (5-8)")
		all      = flag.Bool("all", false, "regenerate all figures")
		csv      = flag.Bool("csv", false, "CSV output for figures")
		plot     = flag.Bool("plot", false, "ASCII plots for figures")
		table    = flag.String("table", "", "print a table: 1, 2 or dcpmm")
		claims   = flag.Bool("claims", false, "check the paper's §4 claims")
		dataflow = flag.Bool("dataflow", false, "print Figure 9 data flows")
		run      = flag.Bool("run", false, "execute a real STREAM + STREAM-PMem run")
		n        = flag.Int("n", 1_000_000, "array elements for -run")
		threads  = flag.Int("threads", 10, "threads for -run (1-10, socket 0)")
	)
	flag.Parse()

	h, err := streamer.NewHarness()
	if err != nil {
		log.Fatal(err)
	}

	did := false
	emit := func(f *streamer.Figure) {
		switch {
		case *csv:
			fmt.Print(f.RenderCSV())
		case *plot:
			fmt.Print(f.RenderPlots(60, 14))
		default:
			fmt.Println(f.RenderText())
		}
	}
	if *figure != 0 {
		f, err := h.Figure(*figure)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
		did = true
	}
	if *all {
		figs, err := h.AllFigures()
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range figs {
			emit(f)
		}
		did = true
	}
	switch *table {
	case "":
	case "1":
		rows, err := h.S1.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.FormatTable1(rows))
		did = true
	case "2":
		rows, err := h.S1.Table2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.FormatTable2(rows))
		did = true
	case "dcpmm":
		rows, err := h.DCPMMTable()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(streamer.FormatDCPMMTable(rows))
		did = true
	default:
		log.Fatalf("unknown table %q (want 1, 2 or dcpmm)", *table)
	}
	if *claims {
		cs, err := h.SummaryClaims()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(streamer.FormatClaims(cs))
		for _, c := range cs {
			if !c.Pass {
				os.Exit(1)
			}
		}
		did = true
	}
	if *dataflow {
		txt, err := h.Dataflows()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(txt)
		did = true
	}
	if *run {
		if err := realRun(h.S1, *n, *threads); err != nil {
			log.Fatal(err)
		}
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

// realRun executes STREAM (volatile, local DDR5) and STREAM-PMem (pool
// on /mnt/pmem2) with genuine data movement and validation.
func realRun(rt *core.Runtime, n, threads int) error {
	cores, err := numa.PlaceOnSocket(rt.Machine, 0, threads)
	if err != nil {
		return err
	}
	fmt.Printf("STREAM (volatile, local DDR5, %d threads, %d elements)\n%s\n", threads, n, stream.Header())
	arr, err := stream.NewVolatileArrays(n)
	if err != nil {
		return err
	}
	b := &stream.Bench{Engine: rt.Engine, Cores: cores, Node: 0, Mode: perf.MemoryMode}
	results, err := b.Run(arr, stream.Config{N: n, NTimes: 5})
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(r)
	}

	fmt.Printf("\nSTREAM-PMem (pmemobj pool on /mnt/pmem2 via CXL, %d threads)\n%s\n", threads, stream.Header())
	poolSize := int64(n)*3*8 + 4<<20
	pool, err := rt.CreatePool(2, "stream-run.obj", stream.Layout, poolSize)
	if err != nil {
		return err
	}
	parr, err := stream.AllocPmemArrays(pool, n)
	if err != nil {
		return err
	}
	bp := &stream.Bench{Engine: rt.Engine, Cores: cores, Node: 2, Mode: perf.AppDirect}
	presults, err := bp.Run(parr, stream.Config{N: n, NTimes: 5})
	if err != nil {
		return err
	}
	for _, r := range presults {
		fmt.Println(r)
	}
	p, pb := pool.Stats().Persists.Load(), pool.Stats().PersistBytes.Load()
	fmt.Printf("\npool persists: %d (%d bytes); validation passed on both runs\n", p, pb)
	return nil
}
