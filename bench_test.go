// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Figures 5-8
// report the modelled sustained bandwidth of each test group at the
// full thread count as custom GB/s metrics; the ablation benches cover
// the design alternatives §2.2 and §6 discuss; the remaining benches
// measure the real (wall-clock) cost of the substrate's hot paths.
package cxlpmem

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/pmem"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/streamer"
	"cxlpmem/internal/tiering"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// metricName makes a label usable as a testing.B metric unit (no
// whitespace allowed).
func metricName(s string) string {
	return strings.NewReplacer(" ", "_", ",", "", "(", "", ")", "").Replace(s)
}

// benchHarness is shared across figure benches (assembly is cheap but
// not free).
func benchHarness(b *testing.B) *streamer.Harness {
	b.Helper()
	h, err := streamer.NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// figureBench regenerates one figure per iteration and reports the
// saturated bandwidth of every series as GB/s metrics.
func figureBench(b *testing.B, number int) {
	h := benchHarness(b)
	var fig *streamer.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = h.Figure(number)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, g := range streamer.Groups {
		for _, s := range fig.Groups[g] {
			name := metricName(fmt.Sprintf("%s/%s/%s:GB/s", g, s.Setup, s.Label))
			b.ReportMetric(s.Max(), name)
		}
	}
}

// BenchmarkFig5Scale regenerates Figure 5 (SCALE, groups 1a-2b).
func BenchmarkFig5Scale(b *testing.B) { figureBench(b, 5) }

// BenchmarkFig6Add regenerates Figure 6 (ADD).
func BenchmarkFig6Add(b *testing.B) { figureBench(b, 6) }

// BenchmarkFig7Copy regenerates Figure 7 (COPY).
func BenchmarkFig7Copy(b *testing.B) { figureBench(b, 7) }

// BenchmarkFig8Triad regenerates Figure 8 (TRIAD).
func BenchmarkFig8Triad(b *testing.B) { figureBench(b, 8) }

// BenchmarkTableDCPMM regenerates the §1.4 DCPMM-vs-CXL comparison.
func BenchmarkTableDCPMM(b *testing.B) {
	h := benchHarness(b)
	var rows []streamer.DCPMMRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = h.DCPMMTable()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ReadGBps, metricName(r.Device+":read-GB/s"))
		b.ReportMetric(r.WriteGBps, metricName(r.Device+":write-GB/s"))
	}
}

// --- Ablations (DESIGN.md §3) -------------------------------------------

// cxlRateWith builds Setup #1 with modified prototype options and
// returns the modelled 10-thread App-Direct Copy rate against the CXL
// node.
func cxlRateWith(b *testing.B, opts topology.Setup1Options) float64 {
	b.Helper()
	m, _, err := topology.Setup1(opts)
	if err != nil {
		b.Fatal(err)
	}
	cores, err := numa.PlaceOnSocket(m, 0, 10)
	if err != nil {
		b.Fatal(err)
	}
	r, err := perf.New(m).StreamBandwidth(cores, 2, stream.Copy.Mix(), perf.AppDirect)
	if err != nil {
		b.Fatal(err)
	}
	return r.Total.GBps()
}

// BenchmarkAblationLinkGen compares the CXL 1.1/2.0 PCIe-Gen5 link with
// a CXL 3.0 Gen6 link (§1.3). The prototype is IP-slice-bound, so the
// faster link alone moves nothing — the per-slice cap must scale too,
// which is exactly the §2.2 observation that the bandwidth limit "does
// not reflect an intrinsic limitation of the CXL standard".
func BenchmarkAblationLinkGen(b *testing.B) {
	var g5, g6, g6s float64
	for i := 0; i < b.N; i++ {
		g5 = cxlRateWith(b, topology.Setup1Options{})
		g6 = cxlRateWith(b, topology.Setup1Options{FPGA: fpga.Options{LinkKind: interconnect.KindPCIe6}})
		g6s = cxlRateWith(b, topology.Setup1Options{
			FPGA:     fpga.Options{LinkKind: interconnect.KindPCIe6},
			IPSlices: 2,
		})
	}
	b.ReportMetric(g5, "gen5:GB/s")
	b.ReportMetric(g6, "gen6:GB/s")
	b.ReportMetric(g6s, "gen6+2slices:GB/s")
}

// BenchmarkAblationDeviceDRAM sweeps the card's DRAM speed (§2.2:
// "transitioning to a higher-speed FPGA, supporting DDR4 speeds of
// 3200 Mbps or even embracing the capabilities of DDR5 at 5600 Mbps").
func BenchmarkAblationDeviceDRAM(b *testing.B) {
	rates := map[string]units.TransferRate{"ddr4-1333": 1333, "ddr4-3200": 3200, "ddr5-5600": 5600}
	out := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, rate := range rates {
			// Scale IP slices with the faster media so the device
			// side is not the artificial limit.
			out[name] = cxlRateWith(b, topology.Setup1Options{
				FPGA:     fpga.Options{Rate: rate},
				IPSlices: 4,
			})
		}
	}
	for name, v := range out {
		b.ReportMetric(v, name+":GB/s")
	}
}

// BenchmarkAblationChannels sweeps the card's DDR channel count (§2.2:
// "possibly transitioning from one channel to four").
func BenchmarkAblationChannels(b *testing.B) {
	out := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, ch := range []int{1, 2, 4} {
			out[ch] = cxlRateWith(b, topology.Setup1Options{
				FPGA:     fpga.Options{Channels: ch},
				IPSlices: 4,
			})
		}
	}
	for ch, v := range out {
		b.ReportMetric(v, fmt.Sprintf("channels=%d:GB/s", ch))
	}
}

// BenchmarkAblationMultiHost models the §6 future-work question: more
// than one node accessing one CXL memory pool. A real switch+MLD fabric
// is assembled (internal/cluster); the appliance's shared pipeline caps
// the aggregate, so per-host bandwidth decays as hosts join.
func BenchmarkAblationMultiHost(b *testing.B) {
	var pts []cluster.ScalePoint
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(4, 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		pts, err = c.Scalability(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.PerHost.GBps(), fmt.Sprintf("hosts=%d:per-host-GB/s", p.Hosts))
	}
	b.ReportMetric(pts[len(pts)-1].Aggregate.GBps(), "aggregate:GB/s")
}

// BenchmarkAblationHybrid measures the §6 hybrid-architecture payoff:
// average access latency of a skewed working set before and after the
// tiering daemon migrates hot pages toward DDR5 (internal/tiering).
func BenchmarkAblationHybrid(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		m, _, err := topology.Setup1(topology.Setup1Options{})
		if err != nil {
			b.Fatal(err)
		}
		mgr, hybrid, err := tiering.NewDDR5CXLDCPMMHierarchy(m, 4, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		var pages []tiering.PageID
		for p := 0; p < 24; p++ {
			id, err := mgr.Alloc()
			if err != nil {
				b.Fatal(err)
			}
			pages = append(pages, id)
		}
		buf := make([]byte, 64)
		// Cold-start placement lands the first 16 pages on DCPMM; the
		// hot set is drawn from those far-tier residents.
		touch := func() {
			for _, id := range pages[:4] {
				for k := 0; k < 64; k++ {
					if err := mgr.Read(id, buf, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		c0, err := hybrid.Core(0)
		if err != nil {
			b.Fatal(err)
		}
		touch()
		lb, err := mgr.AvgAccessLatency(hybrid, c0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Rebalance(); err != nil {
			b.Fatal(err)
		}
		touch()
		la, err := mgr.AvgAccessLatency(hybrid, c0)
		if err != nil {
			b.Fatal(err)
		}
		before, after = lb.Ns(), la.Ns()
	}
	b.ReportMetric(before, "before-rebalance:ns")
	b.ReportMetric(after, "after-rebalance:ns")
}

// BenchmarkMemtierDaemon measures the memtier policy daemon's epoch
// cost under live zipfian foreground traffic: every iteration drives
// 2000 skewed accesses over a cold-started DDR5/CXL/DCPMM hierarchy
// and runs one policy epoch (heat-window advance, EWMA scan, budgeted
// migrations). After the first few epochs the hot set sits on DDR5 and
// epochs are pure scans, so ns/op is the daemon's steady-state
// overhead. Reports the converged average access latency and the
// migration rate.
func BenchmarkMemtierDaemon(b *testing.B) {
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		b.Fatal(err)
	}
	mgr, hybrid, err := tiering.NewDDR5CXLDCPMMHierarchy(m, 4, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	d, err := tiering.NewDaemon(mgr, tiering.DaemonConfig{BudgetPages: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	ids := make([]tiering.PageID, 16)
	for i := range ids {
		if ids[i], err = mgr.Alloc(); err != nil {
			b.Fatal(err)
		}
	}
	c0, err := hybrid.Core(0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(len(ids)-1))
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 2000; k++ {
			p := int(zipf.Uint64())
			if err := mgr.Read(ids[p], buf, int64((k%64)*64)); err != nil {
				b.Fatal(err)
			}
		}
		d.RunEpoch()
	}
	b.StopTimer()
	// RunEpoch consumed the access counters; one untimed drive restores
	// the weights AvgAccessLatency averages over.
	for k := 0; k < 2000; k++ {
		p := int(zipf.Uint64())
		if err := mgr.Read(ids[p], buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	lat, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		b.Fatal(err)
	}
	st := mgr.Stats()
	b.ReportMetric(lat.Ns(), "avg-access:ns")
	b.ReportMetric(float64(st.Promotions+st.Demotions)/float64(b.N), "migrations/epoch")
}

// --- Real-execution benches ----------------------------------------------

func benchPool(b *testing.B, size int) *pmem.Pool {
	b.Helper()
	r := newBenchRegion(size)
	p, err := pmem.Create(r, "bench")
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblationTxOverhead decomposes the PMDK cost: a transactional
// 4 KiB update vs a raw store+persist of the same range. The ratio is
// the microscopic counterpart of the figure-level PMDKFactor.
func BenchmarkAblationTxOverhead(b *testing.B) {
	b.Run("tx-update", func(b *testing.B) {
		p := benchPool(b, 64<<20)
		oid, err := p.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := p.Update(oid, 0, 4096, func(v []byte) error {
				v[i%4096] = byte(i)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-persist", func(b *testing.B) {
		p := benchPool(b, 64<<20)
		oid, err := p.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		v, err := p.View(oid, 4096)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v[i%4096] = byte(i)
			if err := p.Persist(oid, 4096); err != nil {
				b.Fatal(err)
			}
			p.Drain()
		}
	})
}

// benchCXLPort builds a trained port over the FPGA card (16 MiB HDM:
// two 8 MiB channels — enough for 16 independent 1 MiB parallel-worker
// regions) and returns it with its enumerated window base. Shared by
// the serial and parallel port benchmarks so they always measure the
// same hardware configuration.
func benchCXLPort(b *testing.B) (*cxl.RootPort, uint64) {
	b.Helper()
	card, err := fpga.New(fpga.Options{ChannelCapacity: 8 * units.MiB})
	if err != nil {
		b.Fatal(err)
	}
	rp := cxl.NewRootPort("rp", card.Link())
	if err := rp.Attach(card); err != nil {
		b.Fatal(err)
	}
	h, err := cxl.Enumerate(0, rp)
	if err != nil {
		b.Fatal(err)
	}
	return rp, h.Windows[0].Base
}

// BenchmarkCXLPortLine measures the substrate's real per-line CXL.mem
// round trip (flit encode, decode, HDM lookup, media access).
func BenchmarkCXLPortLine(b *testing.B) {
	rp, base := benchCXLPort(b)
	var line [cxl.LineSize]byte
	b.SetBytes(int64(cxl.LineSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := base + uint64(i%1024)*64
		if err := rp.WriteLine(addr, &line); err != nil {
			b.Fatal(err)
		}
		if err := rp.ReadLine(addr, &line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingOps measures the asynchronous submission/completion ring
// path at queue depth 1/8/32/128: depth line descriptors submitted,
// one Flush doorbell moving them across the link as packed back-to-back
// flits (4 SQ entries per flit, device-side run coalescing), then the
// completion queue drained in bulk through Harvest into a caller-owned
// slice. Per-op time = ns/op ÷ depth; compare against half of
// BenchmarkCXLPortLine's ns/op (its iteration is a write+read pair).
// The ≥5× per-op speedup at depth 32 is the ring acceptance criterion,
// enforced by the CI batching gate. Steady state allocates nothing.
func BenchmarkRingOps(b *testing.B) {
	for _, dir := range []string{"write", "read"} {
		for _, depth := range []int{1, 8, 32, 128} {
			b.Run(fmt.Sprintf("%s/depth=%d", dir, depth), func(b *testing.B) {
				rp, base := benchCXLPort(b)
				span := 128 * depth * cxl.LineSize // cycled region, ≤1 MiB
				seed := make([]byte, span)
				if err := rp.WriteBurst(base, seed); err != nil {
					b.Fatal(err) // pre-touch: measure the wire, not first-touch
				}
				bufs := make([][cxl.LineSize]byte, depth)
				done := make([]cxl.Completed, depth)
				write := dir == "write"
				b.SetBytes(int64(depth * cxl.LineSize))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					addr := base + uint64(i%128)*uint64(depth*cxl.LineSize)
					for k := 0; k < depth; k++ {
						var err error
						if write {
							_, err = rp.SubmitWrite(addr+uint64(k*cxl.LineSize), &bufs[k])
						} else {
							_, err = rp.SubmitRead(addr+uint64(k*cxl.LineSize), &bufs[k])
						}
						if err != nil {
							b.Fatal(err)
						}
					}
					rp.Flush()
					for got := 0; got < depth; {
						got += rp.Harvest(done[got:])
					}
					for k := range done {
						if done[k].Err != nil {
							b.Fatal(done[k].Err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkCXLPortBurst measures the burst data path: 4 KiB moved per
// WriteBurst/ReadBurst pair under one header flit each, every data beat
// still crossing the modelled wire (encode, CRC, decode). The per-line
// baseline above needs 64 full codec round trips for the same bytes.
func BenchmarkCXLPortBurst(b *testing.B) {
	rp, base := benchCXLPort(b)
	const burst = cxl.MaxBurstLines * cxl.LineSize // 4 KiB
	buf := make([]byte, burst)
	for i := range buf {
		buf[i] = byte(i)
	}
	// Pre-touch the window so steady state measures the wire, not
	// first-touch page materialisation in the sparse media store.
	if err := rp.WriteBurst(base, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * int64(burst)) // one write + one read per iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := base + uint64(i%256)*uint64(burst) // cycle through a 1 MiB window
		if err := rp.WriteBurst(addr, buf); err != nil {
			b.Fatal(err)
		}
		if err := rp.ReadBurst(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInterleaveSet builds a ways-wide striped data path over
// independent FPGA cards (8 MiB channels each), one root port per leg.
func benchInterleaveSet(b *testing.B, ways int, granule uint64) *cxl.InterleaveSet {
	b.Helper()
	ports := make([]*cxl.RootPort, ways)
	for i := range ports {
		card, err := fpga.New(fpga.Options{
			Name:            fmt.Sprintf("agilex7-leg%d", i),
			ChannelCapacity: 8 * units.MiB,
		})
		if err != nil {
			b.Fatal(err)
		}
		ports[i] = cxl.NewRootPort(fmt.Sprintf("rp%d", i), card.Link())
		if err := ports[i].Attach(card); err != nil {
			b.Fatal(err)
		}
	}
	s, err := cxl.NewInterleaveSet("bench-stripe", 0, granule, ports...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkInterleavedBurst measures the striped burst data path: the
// same 64 KiB write+read cycle BenchmarkCXLPortBurst performs per 4 KiB,
// fanned across 1/2/4/8 interleave legs. Every leg's beats still cross
// the modelled wire (encode, CRC, decode) on its own port, so the
// scaling factor is real leg parallelism — compare the ways=1 GB/s
// against BenchmarkCXLPortBurst and the higher way counts against each
// other for the curve. Granule 4 KiB stripes zero-copy; the gather
// sub-bench shows the 256 B-granule gather/scatter cost. Steady state
// allocates nothing at any width.
func BenchmarkInterleavedBurst(b *testing.B) {
	const span = 64 << 10 // per-iteration transfer, each direction
	run := func(b *testing.B, s *cxl.InterleaveSet) {
		buf := make([]byte, span)
		for i := range buf {
			buf[i] = byte(i)
		}
		// Pre-touch so steady state measures the wire, not first-touch
		// page materialisation in the sparse media store.
		if err := s.WriteBurst(s.Base(), buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(2 * span)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := s.Base() + uint64(i%16)*span // cycle a 1 MiB window
			if err := s.WriteBurst(addr, buf); err != nil {
				b.Fatal(err)
			}
			if err := s.ReadBurst(addr, buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, ways := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			run(b, benchInterleaveSet(b, ways, 4096))
		})
	}
	b.Run("ways=4/granule=256", func(b *testing.B) {
		run(b, benchInterleaveSet(b, 4, 256))
	})
}

// BenchmarkStripedSTREAM reports the modelled STREAM scaling curve over
// the interleaved Setup #1 variants: 10 local threads against the CXL
// node at 1/2/4/8-way striping (Copy and Triad, App-Direct). The curve
// doubles through the IP-slice-bound region and saturates where
// per-thread demand (Little's law at unchanged latency) takes over.
func BenchmarkStripedSTREAM(b *testing.B) {
	out := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, ways := range []int{1, 2, 4, 8} {
			m, _, err := topology.Setup1(topology.Setup1Options{InterleaveWays: ways})
			if err != nil {
				b.Fatal(err)
			}
			cores, err := numa.PlaceOnSocket(m, 0, 10)
			if err != nil {
				b.Fatal(err)
			}
			e := perf.New(m)
			for _, op := range []stream.Op{stream.Copy, stream.Triad} {
				r, err := e.StreamBandwidth(cores, 2, op.Mix(), perf.AppDirect)
				if err != nil {
					b.Fatal(err)
				}
				out[fmt.Sprintf("ways=%d/%s:GB/s", ways, op)] = r.Total.GBps()
			}
			if n2, err := m.Node(2); err == nil && n2.Stripe != nil {
				n2.Stripe.Close() // modelled bench: the leg workers did no work
			}
		}
	}
	for name, v := range out {
		b.ReportMetric(v, metricName(name))
	}
}

// BenchmarkPoolOpen measures pmemobj_open over the CXL mount: header
// validation, undo-log recovery and the full view load, all through the
// root port's burst path (one media scan — see pmem.Open).
func BenchmarkPoolOpen(b *testing.B) {
	rt, err := NewSetup1(Setup1Options{FPGA: fpga.Options{ChannelCapacity: 8 * units.MiB}})
	if err != nil {
		b.Fatal(err)
	}
	n, ok := rt.CXLNode()
	if !ok {
		b.Fatal("no CXL node")
	}
	const size = 8 << 20
	p, err := rt.CreatePool(n.ID, "bench-open", "bench", size)
	if err != nil {
		b.Fatal(err)
	}
	oid, err := p.Alloc(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Persist(oid, 1<<20); err != nil {
		b.Fatal(err)
	}
	if err := p.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := rt.OpenPool(n.ID, "bench-open", "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkStreamTriadReal runs the real Triad kernel over host memory
// — the data-movement cost of the instrument itself.
func BenchmarkStreamTriadReal(b *testing.B) {
	arr, err := stream.NewVolatileArrays(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	stream.Init(arr)
	b.SetBytes(int64(stream.Triad.BytesPerElement()) * (1 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stream.Execute(stream.Triad, arr, stream.DefaultScalar, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPmemAlloc measures allocator throughput with reuse.
func BenchmarkPmemAlloc(b *testing.B) {
	p := benchPool(b, 64<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid, err := p.Alloc(1024)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(oid); err != nil {
			b.Fatal(err)
		}
	}
}
