package cxlpmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"cxlpmem/internal/chaos"
	"cxlpmem/internal/cluster"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fabric"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/units"
)

// Chaos fault matrix: every chaos site is armed against one tenant leg
// of a live elastic pool — in two phases, before the foreground load
// starts and in the middle of it — while a second tenant runs clean as
// the isolation control. This is the rasmatrix discipline applied to
// the fault-injection engine itself: instead of one scripted failure,
// the whole (site × phase) plane, each cell under a wall-clock
// watchdog.
//
// Invariants asserted in every cell:
//   - zero hangs: the cell completes under its watchdog, and every
//     foreground op returns (recovered, or a typed fail-fast error);
//   - zero data loss: every ACKED write reads back byte-exact (skipped
//     only after a surprise removal takes the readback path itself);
//   - fault containment: the control tenant never sees an error;
//   - zero goroutine leaks: the goroutine count settles back to the
//     pre-cell baseline;
//   - bounded tail: foreground p99 stays under chaosP99Bound even with
//     the fault armed.

const (
	chaosSeed     = 0xD15EA5E
	chaosPages    = 16
	chaosPageSize = 4096
	chaosRounds   = 20
	chaosP99Bound = 2 * time.Second
	chaosCellTime = 90 * time.Second
)

// chaosCell is one matrix row: a plan plus how to drive and judge it.
type chaosCell struct {
	name  string
	rules []chaos.Rule
	// removes marks plans that surprise-remove the victim leg: the tail
	// of the foreground sees ErrLinkDown and the final readback is
	// impossible through the dead port.
	removes bool
	// cmds drives capacity commands (Grow) under a command deadline.
	cmds bool
	// media pulses the latent-poison rule and checks patrol detection.
	media bool
}

func chaosCells() []chaosCell {
	return []chaosCell{
		{name: "port-corrupt", rules: []chaos.Rule{
			{Site: chaos.SitePort, Action: chaos.ActCorrupt, Trigger: chaos.Trigger{Every: 13}}}},
		{name: "port-drop", rules: []chaos.Rule{
			{Site: chaos.SitePort, Action: chaos.ActDrop, Trigger: chaos.Trigger{Every: 17, Count: 8}}}},
		{name: "port-delay", rules: []chaos.Rule{
			{Site: chaos.SitePort, Action: chaos.ActDelay, Trigger: chaos.Trigger{Every: 29, Count: 6}, Delay: 100 * time.Microsecond}}},
		{name: "port-reorder", rules: []chaos.Rule{
			{Site: chaos.SitePort, Action: chaos.ActReorder, Trigger: chaos.Trigger{Every: 31, Count: 4}}}},
		{name: "link-flap", rules: []chaos.Rule{
			{Site: chaos.SiteLink, Action: chaos.ActFlap, Trigger: chaos.Trigger{Nth: 40}, Delay: 2 * time.Millisecond}}},
		{name: "link-remove", removes: true, rules: []chaos.Rule{
			{Site: chaos.SiteLink, Action: chaos.ActRemove, Trigger: chaos.Trigger{Nth: 120}}}},
		{name: "mailbox-stall", cmds: true, rules: []chaos.Rule{
			{Site: chaos.SiteMailbox, Action: chaos.ActStall, Trigger: chaos.Trigger{Every: 2, Count: 6}, Delay: 50 * time.Millisecond}}},
		{name: "fabric-garble", cmds: true, rules: []chaos.Rule{
			{Site: chaos.SiteFabric, Action: chaos.ActGarble, Trigger: chaos.Trigger{Every: 2, Count: 4}}}},
		{name: "media-poison", media: true, rules: []chaos.Rule{
			{Site: chaos.SiteMedia, Action: chaos.ActPoison, Trigger: chaos.Trigger{Every: 1, Count: 3}}}},
	}
}

func TestChaosMatrixEverySiteEveryPhase(t *testing.T) {
	for _, cell := range chaosCells() {
		for _, phase := range []string{"armed-before", "armed-mid"} {
			cell, phase := cell, phase
			t.Run(cell.name+"/"+phase, func(t *testing.T) {
				runChaosCell(t, cell, phase)
			})
		}
	}
}

func runChaosCell(t *testing.T, cell chaosCell, phase string) {
	baseGoroutines := runtime.NumGoroutine()

	e, err := cluster.NewElastic(cluster.ElasticConfig{
		Hosts:   2,
		Pool:    16 * units.MiB,
		Quota:   8 * units.MiB,
		Initial: 2 * units.MiB,
		Granule: 256 * units.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim, ctrl := e.Hosts[0], e.Hosts[1]
	exts, err := e.Fabric.Extents(victim.Tenant.Name())
	if err != nil || len(exts) == 0 {
		t.Fatalf("victim extents: %v", err)
	}
	vx := exts[0]
	cexts, err := e.Fabric.Extents(ctrl.Tenant.Name())
	if err != nil || len(cexts) == 0 {
		t.Fatalf("control extents: %v", err)
	}

	// The media rule's placement window lives in the extent's back half
	// — headroom the foreground never touches, so the latent poison is
	// patrol's to find, exactly like the rasmatrix seeding.
	rules := append([]chaos.Rule(nil), cell.rules...)
	for i := range rules {
		if rules[i].Site == chaos.SiteMedia {
			rules[i].Trigger.AddrLo = vx.DPA + uint64(vx.Size)/2
			rules[i].Trigger.AddrHi = vx.DPA + uint64(vx.Size)
		}
	}
	eng, err := chaos.NewEngine(chaos.Plan{Seed: chaosSeed, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	mbox := victim.Tenant.Mailbox()
	arm := func() {
		eng.AttachPort(victim.Port)
		eng.AttachSwitch(e.Switch)
		eng.AttachMailbox(victim.Tenant.Name(), mbox)
		eng.AttachMedia(victim.Tenant.Name(), func(dpa uint64) error {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], dpa)
			if _, st := mbox.Execute(cxl.OpInjectPoison, b[:]); st != cxl.MboxSuccess {
				return fmt.Errorf("inject poison: %v", st)
			}
			return nil
		})
	}
	victim.Port.SetOptions(cxl.PortOptions{RetryBackoff: 20 * time.Microsecond})
	e.SetCommandDeadline(10 * time.Millisecond)
	if phase == "armed-before" {
		arm()
	}

	var (
		mirror  [chaosPages][]byte // last ACKED write per page
		lats    []time.Duration
		downN   int
		cmdErrs int
	)
	pageAddr := func(x fabric.ExtentInfo, h *cluster.ElasticHost, p int) uint64 {
		return h.Window.Base + x.DPA + uint64(p*chaosPageSize)
	}
	body := func() error {
		buf := make([]byte, chaosPageSize)
		rbuf := make([]byte, chaosPageSize)
		cbuf := make([]byte, chaosPageSize)
		for round := 0; round < chaosRounds; round++ {
			if phase == "armed-mid" && round == 3 {
				arm()
			}
			for p := 0; p < chaosPages; p++ {
				for i := range buf {
					buf[i] = byte(round*31 + p*7 + i)
				}
				t0 := time.Now()
				err := victim.IO.WriteBurst(pageAddr(vx, victim, p), buf)
				lats = append(lats, time.Since(t0))
				switch {
				case err == nil:
					mirror[p] = append(mirror[p][:0], buf...)
					// Read-own-write: an acked write is immediately visible.
					if rerr := victim.IO.ReadBurst(pageAddr(vx, victim, p), rbuf); rerr == nil {
						if !bytes.Equal(buf, rbuf) {
							return fmt.Errorf("round %d page %d: acked write read back corrupted", round, p)
						}
					} else if !cell.removes || !errors.Is(rerr, cxl.ErrLinkDown) {
						return fmt.Errorf("round %d page %d: readback: %w", round, p, rerr)
					}
				case cell.removes && errors.Is(err, cxl.ErrLinkDown):
					downN++ // fail-fast after surprise removal: the wanted outcome
				default:
					return fmt.Errorf("round %d page %d: unrecovered foreground error: %w", round, p, err)
				}
			}
			// Control tenant: must never feel the victim's faults.
			for i := range cbuf {
				cbuf[i] = byte(round ^ i)
			}
			if err := ctrl.IO.WriteBurst(pageAddr(cexts[0], ctrl, 0), cbuf); err != nil {
				return fmt.Errorf("round %d: control write: %w", round, err)
			}
			if err := ctrl.IO.ReadBurst(pageAddr(cexts[0], ctrl, 0), rbuf); err != nil || !bytes.Equal(cbuf, rbuf[:len(cbuf)]) {
				return fmt.Errorf("round %d: control round trip broken (%v)", round, err)
			}
			if cell.cmds && round%5 == 0 {
				t0 := time.Now()
				if _, err := e.Grow(0, 256*units.KiB); err != nil {
					cmdErrs++ // bounded failure is acceptable; hanging is not
				}
				if d := time.Since(t0); d > 5*time.Second {
					return fmt.Errorf("round %d: capacity command took %v despite deadline", round, d)
				}
			}
			if cell.media && round%7 == 0 {
				eng.Pulse()
			}
		}
		return nil
	}

	// Global watchdog: the cell must terminate, full stop.
	done := make(chan error, 1)
	go func() { done <- body() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(chaosCellTime):
		t.Fatalf("cell wedged: watchdog expired after %v", chaosCellTime)
	}

	if eng.Fires() == 0 {
		t.Fatalf("plan never fired; the cell proved nothing (schedule empty)")
	}
	eng.Disarm()

	// Zero data loss: every acked page reads back byte-exact. A removed
	// leg has no readback path — there the invariant is fail-fast.
	if !cell.removes {
		out := make([]byte, chaosPageSize)
		for p := 0; p < chaosPages; p++ {
			if mirror[p] == nil {
				continue
			}
			if err := victim.IO.ReadBurst(pageAddr(vx, victim, p), out); err != nil {
				t.Fatalf("final readback page %d: %v", p, err)
			}
			if !bytes.Equal(mirror[p], out) {
				t.Errorf("page %d diverged from the last acked write", p)
			}
		}
	} else {
		if downN == 0 {
			t.Error("surprise removal produced no fail-fast ErrLinkDown")
		}
		if victim.Port.State() != cxl.LinkDown {
			t.Errorf("victim link %v after removal, want down", victim.Port.State())
		}
	}

	// Site-specific detection evidence.
	st := victim.Port.Stats()
	switch cell.name {
	case "port-corrupt", "port-drop", "port-reorder":
		if st.Retries == 0 {
			t.Error("wire faults fired but the retry path never engaged")
		}
	case "link-flap":
		if st.Retrains == 0 {
			t.Error("flap fired but no retrain was counted")
		}
	case "mailbox-stall":
		if cmdErrs == 0 {
			t.Error("stalled commands all beat a 10ms deadline across 50ms stalls")
		}
		if victim.Tenant.Device().Stats().CommandTimeouts.Load() == 0 {
			t.Error("command deadline expiries not counted on the device")
		}
	case "fabric-garble":
		if cmdErrs == 0 {
			t.Error("garbled DCD commands never surfaced an error")
		}
	case "media-poison":
		p, err := e.EnableRAS(ras.Thresholds{MaxCorrectable: 2, MaxUncorrectable: 1, MaxLinkRetries: 1 << 30}, ras.ScrubConfig{})
		if err != nil {
			t.Fatal(err)
		}
		name := "tenant:" + victim.Tenant.Name()
		if _, err := p.ScrubPass(name); err != nil {
			t.Fatalf("patrol scrub: %v", err)
		}
		h := p.Health(name)
		if h.PoisonedLines != int64(eng.Fires()) || h.PoisonedLines == 0 {
			t.Errorf("patrol found %d poisoned lines, plan planted %d", h.PoisonedLines, eng.Fires())
		}
	}

	// Bounded tail: p99 of the foreground under fault.
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if p99 := lats[len(lats)*99/100]; p99 > chaosP99Bound {
		t.Errorf("foreground p99 = %v under %s, bound %v", p99, cell.name, chaosP99Bound)
	}

	// Zero goroutine leaks: stall timers and parked flushers all drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		t.Errorf("goroutines %d after cell, baseline %d: leak", n, baseGoroutines)
	}
}

// TestChaosMatrixReplay pins the engine's core promise at matrix scale:
// re-running one full cell with the same seed replays a byte-identical
// fault schedule.
func TestChaosMatrixReplay(t *testing.T) {
	run := func() string {
		e, err := cluster.NewElastic(cluster.ElasticConfig{
			Hosts: 1, Pool: 8 * units.MiB, Quota: 4 * units.MiB,
			Initial: units.MiB, Granule: 256 * units.KiB,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := e.Hosts[0]
		exts, err := e.Fabric.Extents(h.Tenant.Name())
		if err != nil || len(exts) == 0 {
			t.Fatalf("extents: %v", err)
		}
		eng, err := chaos.NewEngine(chaos.Plan{Seed: chaosSeed, Rules: []chaos.Rule{
			{Site: chaos.SitePort, Action: chaos.ActCorrupt, Trigger: chaos.Trigger{Every: 11}},
			{Site: chaos.SitePort, Action: chaos.ActDrop, Trigger: chaos.Trigger{Prob: 0.02}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		eng.AttachPort(h.Port)
		defer eng.Disarm()
		buf := make([]byte, chaosPageSize)
		for n := 0; n < 64; n++ {
			addr := h.Window.Base + exts[0].DPA + uint64(n%8)*chaosPageSize
			if err := h.IO.WriteBurst(addr, buf); err != nil {
				t.Fatalf("write %d: %v", n, err)
			}
		}
		return eng.ScheduleString()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("matrix replay diverged:\nrun1:\n%srun2:\n%s", s1, s2)
	}
	if s1 == "" {
		t.Fatal("replay cell fired nothing")
	}
}
