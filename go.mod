module cxlpmem

go 1.24
