module cxlpmem

go 1.23
