// Package cxlpmem is a reproduction, as a library, of "CXL Memory as
// Persistent Memory for Disaggregated HPC: A Practical Approach"
// (Fridman, Mutalik Desai, Singh, Willhalm, Oren — SC 2023,
// arXiv:2308.10714).
//
// The package re-exports the system's public surface:
//
//   - Runtime (NewSetup1/NewSetup2/NewDCPMMReference): the CXL-as-PMem
//     runtime — machines, /mnt/pmemN mounts, persistent pools in
//     App-Direct mode and accounted NUMA allocation in Memory Mode.
//   - Harness (NewHarness): the STREAMer tool regenerating every figure
//     (5-8) and table of the paper's evaluation.
//   - The STREAM instruments (Ops, arrays, Bench) and the PMDK-like
//     persistence layer (pools, transactions, typed arrays).
//   - The HPC use-case layers: checkpoint/restart and solvers with
//     exact-state recovery, plus application-level coherency for the
//     shared-HDM configuration.
//
// Everything below runs against a simulated hardware substrate (CXL
// protocol, FPGA prototype, NUMA fabrics, calibrated bandwidth model);
// see DESIGN.md for the substitution map and EXPERIMENTS.md for the
// paper-vs-measured record.
package cxlpmem

import (
	"cxlpmem/internal/checkpoint"
	"cxlpmem/internal/coherency"
	"cxlpmem/internal/core"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/pmem"
	"cxlpmem/internal/solver"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/streamer"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// Runtime is the CXL-as-PMem runtime (see internal/core).
type Runtime = core.Runtime

// Setup1Options parameterises the Setup #1 builder.
type Setup1Options = topology.Setup1Options

// FPGAOptions parameterises the CXL prototype card.
type FPGAOptions = fpga.Options

// NewSetup1 assembles the paper's Setup #1 (dual Sapphire Rapids with
// the CXL FPGA prototype, Figure 2).
func NewSetup1(opts Setup1Options) (*Runtime, error) { return core.NewSetup1(opts) }

// NewSetup2 assembles the paper's Setup #2 (dual Xeon Gold 5215 with
// on-node DDR4, Figure 3).
func NewSetup2() (*Runtime, error) { return core.NewSetup2() }

// NewDCPMMReference assembles the Optane DCPMM comparison platform.
func NewDCPMMReference() (*Runtime, error) { return core.NewDCPMMReference() }

// Harness is the STREAMer benchmarking tool.
type Harness = streamer.Harness

// NewHarness assembles both setups for figure/table regeneration.
func NewHarness() (*Harness, error) { return streamer.NewHarness() }

// Pool is a persistent object pool (libpmemobj equivalent).
type Pool = pmem.Pool

// OID names a persistent object.
type OID = pmem.OID

// Tx is an undo-log transaction.
type Tx = pmem.Tx

// Bench runs STREAM against one machine configuration.
type Bench = stream.Bench

// BenchConfig controls one STREAM run.
type BenchConfig = stream.Config

// StreamOp is one STREAM kernel.
type StreamOp = stream.Op

// STREAM kernels in execution order.
const (
	Copy  = stream.Copy
	Scale = stream.Scale
	Add   = stream.Add
	Triad = stream.Triad
)

// Access modes (the paper's two PMem operating modes).
const (
	MemoryMode = perf.MemoryMode
	AppDirect  = perf.AppDirect
)

// Affinities for thread placement (§3.2 Class 1.c).
const (
	Close  = numa.Close
	Spread = numa.Spread
)

// CheckpointManager is the chunked incremental C/R directory.
type CheckpointManager = checkpoint.Manager

// NewCheckpointManager initialises a checkpoint directory in a pool.
func NewCheckpointManager(p *Pool, slots int) (*CheckpointManager, error) {
	return checkpoint.New(p, slots)
}

// OpenCheckpointManager reattaches to an existing directory.
func OpenCheckpointManager(p *Pool) (*CheckpointManager, error) {
	return checkpoint.Open(p)
}

// Jacobi is the checkpointable heat solver.
type Jacobi = solver.Jacobi

// CG is the conjugate-gradient solver with exact-state recovery.
type CG = solver.CG

// CoherencyHost is one NUMA node's view of a shared HDM segment.
type CoherencyHost = coherency.Host

// GBps constructs a bandwidth value.
func GBps(v float64) units.Bandwidth { return units.GBps(v) }
