package cxlpmem

import (
	"testing"
	"time"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/telemetry"
)

// BenchmarkTelemetryRecord measures the histogram hot path in
// isolation: one Record into the per-CPU-sharded log-bucketed
// histogram. This is the cost every sampled transaction pays on top of
// the wire; the 0 allocs/op figure is CI-gated.
func BenchmarkTelemetryRecord(b *testing.B) {
	h := telemetry.NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			h.Record(v)
			v = v*2621 + 11
		}
	})
}

// BenchmarkTelemetryOverhead drives the same line write/read loop as
// BenchmarkCXLPortLine with the telemetry plane disabled and enabled
// (default 1-in-64 transaction sampling), so benchstat can report the
// enabled-vs-disabled delta the CI overhead gate holds to ≤3%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, enable bool) {
		rp, base := benchCXLPort(b)
		if enable {
			reg := telemetry.NewRegistry()
			rp.EnableTelemetry(reg, cxl.TelemetryOptions{})
		}
		var line [cxl.LineSize]byte
		b.SetBytes(int64(cxl.LineSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := base + uint64(i%1024)*64
			if err := rp.WriteLine(addr, &line); err != nil {
				b.Fatal(err)
			}
			if err := rp.ReadLine(addr, &line); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkTelemetryFlightRecord measures the always-on capture path: a
// flit record claimed into the fixed ring. This is what an error flit
// costs on top of its retry handling.
func BenchmarkTelemetryFlightRecord(b *testing.B) {
	fr := telemetry.NewFlightRecorder(0)
	rec := telemetry.FlitRecord{Kind: 2, Op: 1, Tag: 7, Addr: 0x1000, When: time.Now().UnixNano()}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			fr.Record(rec)
		}
	})
}
